// Engine scenario-builder tests: stimulus invariants, load construction
// (including pi and distributed RC lines), and crosstalk variants.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/crosstalk.h"
#include "wave/edges.h"
#include "engine/rc_line.h"
#include "engine/scenarios.h"
#include "spice/dc_solver.h"
#include "tech/tech130.h"
#include "wave/metrics.h"

namespace mcsm::engine {
namespace {

class EngineFixture : public ::testing::Test {
protected:
    EngineFixture() : tech_(tech::make_tech130()), lib_(tech_) {}
    tech::Technology tech_;
    cells::CellLibrary lib_;
};

TEST_F(EngineFixture, HistoryStimulusLevelsAndOrdering) {
    for (const auto hc : {HistoryCase::kFast10, HistoryCase::kSlow01}) {
        const HistoryStimulus s = nor2_history(hc, tech_.vdd, 1e-9, 2e-9);
        // Mid-state is '11' for both cases; final state is '00'.
        EXPECT_NEAR(s.a.at(1.5e-9), tech_.vdd, 1e-12);
        EXPECT_NEAR(s.b.at(1.5e-9), tech_.vdd, 1e-12);
        EXPECT_NEAR(s.a.at(3e-9), 0.0, 1e-12);
        EXPECT_NEAR(s.b.at(3e-9), 0.0, 1e-12);
        // Initial state differs: '10' vs '01'.
        const double a0 = s.a.at(0.0);
        const double b0 = s.b.at(0.0);
        if (hc == HistoryCase::kFast10) {
            EXPECT_NEAR(a0, tech_.vdd, 1e-12);
            EXPECT_NEAR(b0, 0.0, 1e-12);
        } else {
            EXPECT_NEAR(a0, 0.0, 1e-12);
            EXPECT_NEAR(b0, tech_.vdd, 1e-12);
        }
    }
    EXPECT_THROW(nor2_history(HistoryCase::kFast10, 1.2, 2e-9, 1e-9),
                 ModelError);
}

TEST_F(EngineFixture, MisStimulusSkewShiftsOnlyB) {
    const MisStimulus s0 = nor2_simultaneous_fall(tech_.vdd, 2e-9, 80e-12, 0.0);
    const MisStimulus s1 =
        nor2_simultaneous_fall(tech_.vdd, 2e-9, 80e-12, 50e-12);
    EXPECT_NEAR(s0.a.at(2.04e-9), s1.a.at(2.04e-9), 1e-12);
    // B is delayed: at the A midpoint, skewed B is still higher.
    EXPECT_GT(s1.b.at(2.04e-9), s0.b.at(2.04e-9) + 0.1);
}

TEST_F(EngineFixture, GoldenCellParksUnspecifiedPinsAtNonControlling) {
    // NAND2 with only pin A driven: B must park at Vdd (non-controlling),
    // so the cell still responds to A.
    const auto a = wave::piecewise_edges(tech_.vdd, {{1e-9, 80e-12, 0.0}});
    GoldenCell bench(lib_, "NAND2", {{"A", a}}, LoadSpec{2e-15, 0, ""});
    spice::TranOptions topt;
    topt.tstop = 2e-9;
    topt.dt = 1e-12;
    const spice::TranResult r = bench.run(topt);
    const wave::Waveform out = r.node_waveform(bench.out_node());
    EXPECT_LT(out.at(0.5e-9), 0.1);            // '11' -> out low
    EXPECT_GT(out.last_value(), 0.9 * tech_.vdd);  // A low -> out high
}

TEST_F(EngineFixture, PiLoadCreatesFarNode) {
    const auto a = wave::piecewise_edges(tech_.vdd, {{1e-9, 80e-12, 0.0}});
    LoadSpec load;
    load.pi_c1 = 2e-15;
    load.pi_r = 1e3;
    load.pi_c2 = 4e-15;
    GoldenCell bench(lib_, "INV_X1", {{"A", a}}, load);
    EXPECT_GE(bench.far_node(), 0);
    spice::TranOptions topt;
    topt.tstop = 2.5e-9;
    topt.dt = 1e-12;
    const spice::TranResult r = bench.run(topt);
    const wave::Waveform near = r.node_waveform(bench.out_node());
    const wave::Waveform far = r.node_waveform(bench.far_node());
    // The far end lags the near end but reaches the same rail.
    const auto tn = near.cross_time(0.6, true, 0.9e-9);
    const auto tf = far.cross_time(0.6, true, 0.9e-9);
    ASSERT_TRUE(tn && tf);
    EXPECT_GT(*tf, *tn);
    EXPECT_NEAR(far.last_value(), tech_.vdd, 0.02);
}

TEST_F(EngineFixture, NoPiLoadMeansNoFarNode) {
    const auto a = wave::piecewise_edges(tech_.vdd, {{1e-9, 80e-12, 0.0}});
    GoldenCell bench(lib_, "INV_X1", {{"A", a}}, LoadSpec{2e-15, 0, ""});
    EXPECT_EQ(bench.far_node(), -1);
}

// --- distributed RC line -----------------------------------------------------

TEST_F(EngineFixture, RcLineStepResponseMatchesElmoreScale) {
    RcLineSpec spec;
    spec.total_resistance = 2e3;
    spec.total_capacitance = 20e-15;
    spec.segments = 10;

    spice::Circuit c;
    const int in = c.node("in");
    c.add_vsource("VIN", in, spice::Circuit::kGround,
                  spice::SourceSpec::pwl(
                      wave::saturated_ramp(0.1e-9, 1e-12, 0.0, 1.0)));
    const auto nodes = attach_rc_line(c, in, spec, "W");
    ASSERT_EQ(nodes.size(), 10u);

    spice::TranOptions topt;
    topt.tstop = 1.0e-9;
    topt.dt = 0.5e-12;
    const spice::TranResult r = spice::solve_tran(c, topt);
    const wave::Waveform far = r.node_waveform(nodes.back());

    // The 50% crossing of a distributed RC step response is ~0.69 * Elmore.
    const double elmore = rc_line_elmore_delay(spec);
    const auto t50 = far.cross_time(0.5, true, 0.1e-9);
    ASSERT_TRUE(t50.has_value());
    const double delay = *t50 - 0.1e-9;
    EXPECT_GT(delay, 0.4 * elmore);
    EXPECT_LT(delay, 1.0 * elmore);
}

TEST_F(EngineFixture, RcLineElmoreFormulaMatchesHandComputation) {
    RcLineSpec spec;
    spec.total_resistance = 1e3;
    spec.total_capacitance = 10e-15;
    spec.segments = 2;
    // r=500 each; caps: 5fF interior... segment model: node1 full 5fF,
    // node2 (far) half 2.5fF. Elmore = 500*(5+2.5)f + 500*2.5f = 5e-12.
    EXPECT_NEAR(rc_line_elmore_delay(spec), 5e-12, 1e-18);
}

TEST_F(EngineFixture, RcLineRejectsBadSpecs) {
    spice::Circuit c;
    const int in = c.node("in");
    RcLineSpec bad;
    bad.segments = 0;
    EXPECT_THROW(attach_rc_line(c, in, bad, "W"), ModelError);
    bad.segments = 2;
    bad.total_resistance = -1.0;
    EXPECT_THROW(attach_rc_line(c, in, bad, "W"), ModelError);
}

// --- crosstalk builder variants -----------------------------------------------

TEST_F(EngineFixture, AggressorDirectionControlsBumpPolarity) {
    CrosstalkConfig cfg;
    cfg.t_victim = 10e-9;  // quiet victim
    spice::TranOptions topt;
    topt.tstop = 3e-9;
    topt.dt = 2e-12;

    cfg.aggressor_input_rising = false;  // aggressor output rises
    GoldenCrosstalk up(lib_, cfg, 1.5e-9);
    const double bump_up =
        up.run(topt).node_waveform(up.victim_net()).max_value();

    cfg.aggressor_input_rising = true;  // aggressor output falls
    GoldenCrosstalk down(lib_, cfg, 1.5e-9);
    const double bump_down =
        down.run(topt).node_waveform(down.victim_net()).min_value();

    EXPECT_GT(bump_up, 0.05);
    EXPECT_LT(bump_down, -0.05);
}

TEST_F(EngineFixture, CouplingCapScalesNoiseBump) {
    spice::TranOptions topt;
    topt.tstop = 3e-9;
    topt.dt = 2e-12;
    double prev_bump = 0.0;
    for (const double cc : {10e-15, 25e-15, 50e-15}) {
        CrosstalkConfig cfg;
        cfg.t_victim = 10e-9;
        cfg.coupling_cap = cc;
        cfg.aggressor_input_rising = false;
        GoldenCrosstalk bench(lib_, cfg, 1.5e-9);
        const double bump =
            bench.run(topt).node_waveform(bench.victim_net()).max_value();
        EXPECT_GT(bump, prev_bump);
        prev_bump = bump;
    }
}

}  // namespace
}  // namespace mcsm::engine
