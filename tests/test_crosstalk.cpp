// Crosstalk scenario tests (the Fig. 12 machinery): golden coupled-line
// behaviour and the CSM model twin's agreement with it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/characterizer.h"
#include "core/model_scenarios.h"
#include "engine/crosstalk.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm::core {
namespace {

class Crosstalk : public ::testing::Test {
protected:
    Crosstalk() : tech_(tech::make_tech130()), lib_(tech_) {
        const Characterizer chr(lib_);
        CharOptions fast;
        fast.transient_caps = false;
        fast.grid_points = 11;
        inv_ = chr.characterize("INV_X1", ModelKind::kSis, {"A"}, fast);
        CharOptions nor_opt = fast;
        nor_opt.grid_points = 9;
        nor_ = chr.characterize("NOR2", ModelKind::kMcsm, {"A", "B"}, nor_opt);
    }

    spice::TranOptions tran_options() const {
        spice::TranOptions t;
        t.tstop = 4.0e-9;
        t.dt = 1e-12;
        return t;
    }

    tech::Technology tech_;
    cells::CellLibrary lib_;
    CsmModel inv_;
    CsmModel nor_;
};

TEST_F(Crosstalk, GoldenAggressorInjectsNoiseOnQuietVictim) {
    engine::CrosstalkConfig cfg;
    cfg.t_victim = 10.0e-9;  // victim never switches inside the window
    // Aggressor *output* rises -> positive bump on the low-held victim.
    cfg.aggressor_input_rising = false;
    engine::GoldenCrosstalk bench(lib_, cfg, 2.0e-9);
    const spice::TranResult r = bench.run(tran_options());
    const wave::Waveform vic = r.node_waveform(bench.victim_net());
    // Quiet victim sits low; the aggressor edge couples a positive bump.
    EXPECT_LT(std::fabs(vic.at(1.0e-9)), 0.05);
    EXPECT_GT(vic.max_value(), 0.1);
    // The bump decays back toward the rail.
    EXPECT_LT(std::fabs(vic.at(3.9e-9)), 0.08);
}

TEST_F(Crosstalk, GoldenInjectionTimingChangesDelay) {
    engine::CrosstalkConfig cfg;
    std::vector<double> delays;
    for (double t_inj : {2.0e-9, 2.25e-9, 3.4e-9}) {
        engine::GoldenCrosstalk bench(lib_, cfg, t_inj);
        const spice::TranResult r = bench.run(tran_options());
        const wave::Waveform out = r.node_waveform(bench.nor_out());
        const auto d = wave::delay_50(bench.victim_input(), false, out, false,
                                      tech_.vdd, 2.0e-9);
        ASSERT_TRUE(d.has_value()) << t_inj;
        delays.push_back(*d);
    }
    // An aggressor edge near the victim transition (2.25ns) perturbs the
    // delay relative to a far-away edge (3.4ns).
    EXPECT_GT(std::fabs(delays[1] - delays[2]), 0.3e-12);
}

TEST_F(Crosstalk, ModelTwinTracksGoldenDelays) {
    engine::CrosstalkConfig cfg;
    double worst_err = 0.0;
    double worst_rmse = 0.0;
    for (double t_inj : {2.05e-9, 2.2e-9, 2.5e-9}) {
        engine::GoldenCrosstalk golden(lib_, cfg, t_inj);
        const spice::TranResult gr = golden.run(tran_options());
        const wave::Waveform g_out = gr.node_waveform(golden.nor_out());

        ModelCrosstalk model(inv_, nor_, cfg, t_inj);
        const spice::TranResult mr = model.run(tran_options());
        const wave::Waveform m_out = mr.node_waveform(model.nor_out());

        const auto dg = wave::delay_50(golden.victim_input(), false, g_out,
                                       false, tech_.vdd, 2.0e-9);
        const auto dm = wave::delay_50(model.victim_input(), false, m_out,
                                       false, tech_.vdd, 2.0e-9);
        ASSERT_TRUE(dg.has_value());
        ASSERT_TRUE(dm.has_value());
        worst_err = std::max(worst_err, std::fabs(*dm - *dg));
        worst_rmse = std::max(
            worst_rmse, wave::rmse_normalized(g_out, m_out, 2.0e-9, 3.5e-9,
                                              tech_.vdd));
    }
    // Paper Fig. 12: delay errors of a few ps, average RMSE ~1.4% of Vdd.
    EXPECT_LT(worst_err, 6e-12);
    EXPECT_LT(worst_rmse, 0.05);
}

TEST_F(Crosstalk, TwoAggressorsComposeFromDevices) {
    // CSM cells are spice::Devices, so a two-aggressor scenario needs no
    // dedicated builder: compose the circuit directly and compare with the
    // transistor-level equivalent.
    const double vdd = tech_.vdd;
    const double t_v = 2.2e-9;
    const wave::Waveform vic_in =
        wave::piecewise_edges(vdd, {{t_v, 100e-12, 0.0}});
    const wave::Waveform agg1_in =
        wave::piecewise_edges(0.0, {{2.25e-9, 100e-12, vdd}});
    const wave::Waveform agg2_in =
        wave::piecewise_edges(vdd, {{2.35e-9, 100e-12, 0.0}});

    auto build_nets = [&](spice::Circuit& c, int vic, int a1, int a2) {
        c.add_capacitor("CC1", vic, a1, 25e-15);
        c.add_capacitor("CC2", vic, a2, 25e-15);
        c.add_capacitor("CGV", vic, spice::Circuit::kGround, 4e-15);
        c.add_capacitor("CG1", a1, spice::Circuit::kGround, 4e-15);
        c.add_capacitor("CG2", a2, spice::Circuit::kGround, 4e-15);
    };

    // Golden: three transistor-level inverters + coupled nets.
    spice::Circuit g;
    const int g_vdd = g.node("vdd");
    g.add_vsource("VDD", g_vdd, spice::Circuit::kGround,
                  spice::SourceSpec::dc(vdd));
    const cells::CellType& inv_cell = lib_.get("INV_X1");
    auto drive = [&](const char* name, const wave::Waveform& w,
                     const char* out) {
        const int in = g.node(std::string(name) + "_in");
        g.add_vsource(std::string("V") + name, in, spice::Circuit::kGround,
                      spice::SourceSpec::pwl(w));
        inv_cell.instantiate(g, name,
                             {{cells::kVdd, g_vdd},
                              {cells::kGnd, spice::Circuit::kGround},
                              {"A", in},
                              {cells::kOut, g.node(out)}});
    };
    drive("DV", vic_in, "vic");
    drive("DA1", agg1_in, "agg1");
    drive("DA2", agg2_in, "agg2");
    build_nets(g, g.node_id("vic"), g.node_id("agg1"), g.node_id("agg2"));

    // Model twin: three SIS CSM inverters on the same nets.
    spice::Circuit m;
    auto mdrive = [&](const char* name, const wave::Waveform& w,
                      const char* out) {
        const int in = m.node(std::string(name) + "_in");
        m.add_vsource(std::string("V") + name, in, spice::Circuit::kGround,
                      spice::SourceSpec::pwl(w));
        m.add_device<CsmCellDevice>(name, inv_, std::vector<int>{in},
                                    std::vector<int>{}, m.node(out));
    };
    mdrive("DV", vic_in, "vic");
    mdrive("DA1", agg1_in, "agg1");
    mdrive("DA2", agg2_in, "agg2");
    build_nets(m, m.node_id("vic"), m.node_id("agg1"), m.node_id("agg2"));

    spice::TranOptions topt = tran_options();
    const wave::Waveform g_vic =
        spice::solve_tran(g, topt).node_waveform(g.node_id("vic"));
    const wave::Waveform m_vic =
        spice::solve_tran(m, topt).node_waveform(m.node_id("vic"));

    const double nrmse =
        wave::rmse_normalized(g_vic, m_vic, 2.0e-9, 3.5e-9, tech_.vdd);
    EXPECT_LT(nrmse, 0.05);
    // Both see the same noise events. The mid-rail region is flattened by
    // the aggressor bumps (a small voltage error there translates into a
    // large time shift), so compare crossings away from the plateau.
    for (const double frac : {0.25, 0.9}) {
        const auto gt = g_vic.cross_time(frac * vdd, true, 2.0e-9);
        const auto mt = m_vic.cross_time(frac * vdd, true, 2.0e-9);
        ASSERT_TRUE(gt && mt) << frac;
        EXPECT_NEAR(*mt, *gt, 15e-12) << frac;
    }
}

TEST_F(Crosstalk, VictimWaveformItselfIsTracked) {
    engine::CrosstalkConfig cfg;
    const double t_inj = 2.25e-9;
    engine::GoldenCrosstalk golden(lib_, cfg, t_inj);
    const wave::Waveform g_vic =
        golden.run(tran_options()).node_waveform(golden.victim_net());
    ModelCrosstalk model(inv_, nor_, cfg, t_inj);
    const wave::Waveform m_vic =
        model.run(tran_options()).node_waveform(model.victim_net());
    const double nrmse =
        wave::rmse_normalized(g_vic, m_vic, 2.0e-9, 3.5e-9, tech_.vdd);
    EXPECT_LT(nrmse, 0.06);
}

}  // namespace
}  // namespace mcsm::core
