// Solver-internals tests: gmin stepping on hard DC problems, transient step
// subdivision, breakpoint handling (trapezoidal ringing suppression), source
// alteration between runs, and circuit introspection.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "spice/tran_solver.h"
#include "tech/tech130.h"
#include "wave/edges.h"

namespace mcsm::spice {
namespace {

using tech::make_tech130;

TEST(DcSolver, CrossCoupledLatchConverges) {
    // A bistable pair is the classic hard DC case; gmin stepping must land
    // on *a* consistent solution (either stable state).
    const tech::Technology t = make_tech130();
    Circuit c;
    const int vdd = c.node("vdd");
    const int q = c.node("q");
    const int qb = c.node("qb");
    c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(t.vdd));
    c.add_mosfet("MN1", q, qb, Circuit::kGround, Circuit::kGround, t.nmos,
                 t.wn_unit, t.lmin);
    c.add_mosfet("MP1", q, qb, vdd, vdd, t.pmos, t.wp_unit, t.lmin);
    c.add_mosfet("MN2", qb, q, Circuit::kGround, Circuit::kGround, t.nmos,
                 t.wn_unit, t.lmin);
    c.add_mosfet("MP2", qb, q, vdd, vdd, t.pmos, t.wp_unit, t.lmin);

    const DcResult r = solve_dc(c);
    const double vq = r.node_voltage(q);
    const double vqb = r.node_voltage(qb);
    // Outputs must be complementary-consistent: vqb ~ inverter(vq).
    EXPECT_NEAR(vq + vqb, t.vdd, 0.65);
    EXPECT_TRUE(std::isfinite(vq));
    EXPECT_TRUE(std::isfinite(vqb));
}

TEST(DcSolver, WarmStartReusesSolution) {
    Circuit c;
    const int in = c.node("in");
    c.add_vsource("V1", in, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("R1", in, Circuit::kGround, 1e3);
    DcResult r1 = solve_dc(c);
    // Warm-started solve of the identical system converges in one step.
    const DcResult r2 = solve_dc(c, {}, &r1.x);
    EXPECT_LE(r2.iterations, 2);
}

TEST(DcSolver, SolveRejectsBadInitialSize) {
    Circuit c;
    const int in = c.node("in");
    c.add_vsource("V1", in, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("R1", in, Circuit::kGround, 1e3);
    std::vector<double> wrong(1, 0.0);
    EXPECT_THROW(solve_dc(c, {}, &wrong), ModelError);
}

TEST(TranSolver, BreakpointsSuppressTrapezoidalRinging) {
    // A pure capacitor across a ramped source: without breakpoint handling,
    // trapezoidal integration rings at the ramp corners (alternating branch
    // currents); with it, the current settles to C*dV/dt immediately.
    Circuit c;
    const int in = c.node("in");
    c.add_vsource("V1", in, Circuit::kGround,
                  SourceSpec::pwl(wave::saturated_ramp(0.5e-9, 1e-9, 0.0,
                                                       1.0)));
    c.add_capacitor("C1", in, Circuit::kGround, 1e-12);
    TranOptions opt;
    opt.tstop = 2e-9;
    opt.dt = 1e-12;
    const TranResult r = solve_tran(c, opt);
    const wave::Waveform i = r.vsource_current("V1");
    // Mid-ramp: exactly 1 mA into the cap at every recorded sample (no
    // alternation), i.e. successive samples agree.
    for (double t = 0.7e-9; t < 1.3e-9; t += 10e-12) {
        EXPECT_NEAR(i.at(t), -1e-3, 2e-5) << t;
        EXPECT_NEAR(i.at(t), i.at(t + 1e-12), 4e-5) << t;
    }
}

TEST(TranSolver, StepSubdivisionRescuesCoarseGrids) {
    // An inverter driven by an edge much faster than the recording step:
    // the solver must subdivide internally rather than fail or corrupt the
    // result.
    const tech::Technology t = make_tech130();
    Circuit c;
    const int vdd = c.node("vdd");
    const int in = c.node("in");
    const int out = c.node("out");
    c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(t.vdd));
    c.add_vsource("VIN", in, Circuit::kGround,
                  SourceSpec::pwl(wave::saturated_ramp(1e-9, 5e-12, 0.0,
                                                       t.vdd)));
    c.add_mosfet("MN", out, in, Circuit::kGround, Circuit::kGround, t.nmos,
                 t.wn_unit, t.lmin);
    c.add_mosfet("MP", out, in, vdd, vdd, t.pmos, t.wp_unit, t.lmin);
    c.add_capacitor("CL", out, Circuit::kGround, 5e-15);

    TranOptions opt;
    opt.tstop = 3e-9;
    opt.dt = 50e-12;  // 10x coarser than the input edge
    const TranResult r = solve_tran(c, opt);
    const wave::Waveform vout = r.node_waveform(out);
    EXPECT_NEAR(vout.at(0.5e-9), t.vdd, 0.05);
    EXPECT_NEAR(vout.last_value(), 0.0, 0.05);
}

TEST(TranSolver, SourceAlterationBetweenRuns) {
    // Characterization-style reuse: same circuit, new source spec per run.
    Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    c.add_vsource("V1", in, Circuit::kGround, SourceSpec::dc(0.0));
    c.add_resistor("R1", in, out, 1e3);
    c.add_capacitor("C1", out, Circuit::kGround, 1e-12);

    TranOptions opt;
    opt.tstop = 6e-9;
    opt.dt = 10e-12;
    for (const double level : {0.3, 0.7, 1.1}) {
        c.vsource("V1").set_spec(SourceSpec::pwl(
            wave::saturated_ramp(0.1e-9, 1e-12, 0.0, level)));
        const TranResult r = solve_tran(c, opt);
        EXPECT_NEAR(r.final_node_voltage(out), level, 0.01) << level;
    }
}

TEST(TranSolver, ResultLookupsValidateNames) {
    Circuit c;
    const int in = c.node("in");
    c.add_vsource("V1", in, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("R1", in, Circuit::kGround, 1e3);
    TranOptions opt;
    opt.tstop = 0.1e-9;
    opt.dt = 0.05e-9;
    const TranResult r = solve_tran(c, opt);
    EXPECT_NO_THROW(r.node_waveform("in"));
    EXPECT_THROW(r.node_waveform("nonexistent"), ModelError);
    EXPECT_NO_THROW(r.vsource_current("V1"));
    EXPECT_THROW(r.vsource_current("R1"), ModelError);
}

TEST(Circuit, IntrospectionAndGroundAliases) {
    Circuit c;
    EXPECT_EQ(c.node("gnd"), Circuit::kGround);
    EXPECT_EQ(c.node("0"), Circuit::kGround);
    const int a = c.node("a");
    EXPECT_TRUE(c.has_node("a"));
    EXPECT_FALSE(c.has_node("b"));
    EXPECT_EQ(c.node_id("a"), a);
    EXPECT_THROW(c.node_id("b"), ModelError);
    EXPECT_EQ(c.node_name(a), "a");
    EXPECT_THROW(c.node_name(99), ModelError);

    c.add_resistor("R1", a, Circuit::kGround, 1e3);
    EXPECT_NE(c.find_device("R1"), nullptr);
    EXPECT_EQ(c.find_device("R2"), nullptr);
    EXPECT_THROW(c.vsource("R1"), ModelError);
    EXPECT_THROW(c.branch_of("R1"), ModelError);
}

TEST(Circuit, PrepareAssignsBranchesAfterLateAdd) {
    Circuit c;
    const int a = c.node("a");
    c.add_vsource("V1", a, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("R1", a, Circuit::kGround, 1e3);
    (void)solve_dc(c);
    // Adding a device invalidates and re-runs preparation transparently.
    const int b = c.node("b");
    c.add_vsource("V2", b, Circuit::kGround, SourceSpec::dc(2.0));
    const DcResult r = solve_dc(c);
    EXPECT_NEAR(r.node_voltage(b), 2.0, 1e-8);
    EXPECT_EQ(c.branch_total(), 2);
}

TEST(Isource, WaveformDrivenCurrentIntoRc) {
    Circuit c;
    const int n = c.node("n");
    c.add_isource("I1", Circuit::kGround, n,
                  SourceSpec::pwl(wave::saturated_ramp(0.2e-9, 0.2e-9, 0.0,
                                                       1e-3)));
    c.add_resistor("R1", n, Circuit::kGround, 1e3);
    TranOptions opt;
    opt.tstop = 1e-9;
    opt.dt = 1e-12;
    const TranResult r = solve_tran(c, opt);
    EXPECT_NEAR(r.final_node_voltage(n), 1.0, 1e-6);
}

}  // namespace
}  // namespace mcsm::spice
