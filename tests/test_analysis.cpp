// Static-analysis subsystem tests: a corpus of deliberately defective
// circuits and models, each asserting that exactly the right rule fires
// (and, on the healthy corpus -- every library cell plus reference RC
// decks -- that nothing fires at all: the linter is only useful if it has
// zero false positives on circuits the repo itself simulates). Also covers
// the structural-singularity matcher on hand-built patterns, the hardened
// store/text load paths, and the repository's lint_on_load admission gate.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/circuit_lint.h"
#include "analysis/model_audit.h"
#include "analysis/structural.h"
#include "cells/library.h"
#include "common/error.h"
#include "core/model_io.h"
#include "lut/table_io.h"
#include "serve/model_store.h"
#include "serve/repository.h"
#include "spice/circuit.h"
#include "spice/source_spec.h"
#include "tech/tech130.h"

namespace mcsm::analysis {
namespace {

namespace fs = std::filesystem;

using spice::Circuit;
using spice::SourceSpec;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string what_of(const std::function<void()>& f) {
    try {
        f();
    } catch (const ModelError& e) {
        return e.what();
    }
    return {};
}

// --- structural matcher on hand-built patterns ---------------------------

using Entries = std::vector<std::pair<int, int>>;

TEST(Structural, FullDiagonalIsNonsingular) {
    const Entries e = {{0, 0}, {1, 1}, {2, 2}};
    const StructuralResult r = structural_analysis(3, e);
    EXPECT_FALSE(r.structurally_singular());
    EXPECT_EQ(r.matching_size, 3u);
    EXPECT_TRUE(r.unmatched_rows.empty());
    EXPECT_TRUE(r.unmatched_cols.empty());
}

TEST(Structural, PermutationPatternIsNonsingular) {
    const Entries e = {{0, 1}, {1, 2}, {2, 0}};
    const StructuralResult r = structural_analysis(3, e);
    EXPECT_FALSE(r.structurally_singular());
    EXPECT_EQ(r.row_match[0], 1);
    EXPECT_EQ(r.row_match[1], 2);
    EXPECT_EQ(r.row_match[2], 0);
}

TEST(Structural, EmptyRowIsDetected) {
    // Row 2 has no entry: deficiency exactly 1 whatever the other rows do.
    const Entries e = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const StructuralResult r = structural_analysis(3, e);
    EXPECT_TRUE(r.structurally_singular());
    EXPECT_EQ(r.deficiency(), 1u);
    ASSERT_EQ(r.unmatched_rows.size(), 1u);
    EXPECT_EQ(r.unmatched_rows[0], 2);
    ASSERT_EQ(r.unmatched_cols.size(), 1u);
    EXPECT_EQ(r.unmatched_cols[0], 2);
}

TEST(Structural, TwoRowsFightingOverOneColumn) {
    const Entries e = {{0, 0}, {1, 0}};
    const StructuralResult r = structural_analysis(2, e);
    EXPECT_TRUE(r.structurally_singular());
    EXPECT_EQ(r.matching_size, 1u);
    EXPECT_EQ(r.deficiency(), 1u);
}

TEST(Structural, DuplicateEntriesAreHarmless) {
    const Entries e = {{0, 0}, {0, 0}, {0, 0}, {1, 1}};
    const StructuralResult r = structural_analysis(2, e);
    EXPECT_FALSE(r.structurally_singular());
}

TEST(Structural, EmptySystemIsNonsingular) {
    const StructuralResult r = structural_analysis(0, Entries{});
    EXPECT_FALSE(r.structurally_singular());
}

// --- circuit linter: seeded defects --------------------------------------

TEST(CircuitLint, CleanRcDividerIsSilent) {
    Circuit c;
    const int in = c.node("in");
    const int mid = c.node("mid");
    c.add_vsource("Vin", in, Circuit::kGround, SourceSpec::dc(1.2));
    c.add_resistor("R1", in, mid, 1e3);
    c.add_resistor("R2", mid, Circuit::kGround, 1e3);
    c.add_capacitor("C1", mid, Circuit::kGround, 1e-15);
    const LintReport report = lint_circuit(c);
    EXPECT_TRUE(report.empty()) << report.format();
}

TEST(CircuitLint, FloatingNodeFires) {
    Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    c.node("nowhere");
    c.add_vsource("Vin", in, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("R1", in, out, 1e3);
    c.add_resistor("R2", out, Circuit::kGround, 1e3);
    const LintReport report = lint_circuit(c);
    ASSERT_TRUE(report.fired("circuit.floating-node")) << report.format();
    const Diagnostic* d = report.by_rule("circuit.floating-node")[0];
    ASSERT_EQ(d->nodes.size(), 1u);
    EXPECT_EQ(d->nodes[0], "nowhere");
    // A floating node is an empty MNA row: the structural detector agrees.
    EXPECT_TRUE(report.fired("circuit.structural-singularity"));
    EXPECT_EQ(report.error_count(), 2u) << report.format();
}

TEST(CircuitLint, CapacitivelySuspendedNodeHasNoDcPath) {
    Circuit c;
    const int in = c.node("in");
    const int n1 = c.node("n1");
    c.add_vsource("Vin", in, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_capacitor("C1", in, n1, 1e-15);
    c.add_capacitor("C2", n1, Circuit::kGround, 1e-15);
    const LintReport report = lint_circuit(c);
    EXPECT_TRUE(report.fired("circuit.no-dc-path")) << report.format();
    EXPECT_EQ(report.error_count(), 1u) << report.format();
    // The caps give n1 a transient diagonal: structurally fine.
    EXPECT_FALSE(report.fired("circuit.structural-singularity"))
        << report.format();

    // Explicit-integrator workloads can demote the rule to a warning.
    CircuitLintOptions lenient;
    lenient.dc_path_is_error = false;
    const LintReport relaxed = lint_circuit(c, lenient);
    EXPECT_EQ(relaxed.error_count(), 0u) << relaxed.format();
    EXPECT_TRUE(relaxed.fired("circuit.no-dc-path"));
}

TEST(CircuitLint, ParallelVsourcesLoopAndSingularity) {
    Circuit c;
    const int a = c.node("a");
    c.add_vsource("V1", a, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_vsource("V2", a, Circuit::kGround, SourceSpec::dc(1.1));
    c.add_resistor("R1", a, Circuit::kGround, 1e3);
    const LintReport report = lint_circuit(c);
    // Both the graph rule and the matrix rule must converge on this bug.
    EXPECT_TRUE(report.fired("circuit.vsource-loop")) << report.format();
    ASSERT_TRUE(report.fired("circuit.structural-singularity"))
        << report.format();
    // The deficient unknown is one of the two branch currents.
    const Diagnostic* d = report.by_rule("circuit.structural-singularity")[0];
    EXPECT_NE(d->message.find("i(V"), std::string::npos) << d->message;
}

TEST(CircuitLint, IsourceOnlyNodeIsStructurallySingular) {
    Circuit c;
    const int n1 = c.node("n1");
    const int drv = c.node("drv");
    c.add_vsource("Vref", drv, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("Rref", drv, Circuit::kGround, 1e3);
    c.add_isource("I1", n1, Circuit::kGround, SourceSpec::dc(1e-6));
    const LintReport report = lint_circuit(c);
    ASSERT_TRUE(report.fired("circuit.structural-singularity"))
        << report.format();
    const Diagnostic* d = report.by_rule("circuit.structural-singularity")[0];
    // Reported by name, before any factorization ran.
    EXPECT_NE(d->message.find("v(n1)"), std::string::npos) << d->message;
    EXPECT_TRUE(report.fired("circuit.no-dc-path"));
}

TEST(CircuitLint, NonFiniteElementValues) {
    Circuit c;
    const int a = c.node("a");
    c.add_vsource("Vin", a, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("Rinf", a, Circuit::kGround, kInf);
    c.add_capacitor("Cinf", a, Circuit::kGround, kInf);
    c.add_capacitor("Czero", a, Circuit::kGround, 0.0);
    const LintReport report = lint_circuit(c);
    EXPECT_TRUE(report.fired("circuit.nonpositive-resistance"))
        << report.format();
    EXPECT_TRUE(report.fired("circuit.negative-capacitance"));
    EXPECT_TRUE(report.fired("circuit.zero-capacitance"));
}

TEST(CircuitLint, NegativeValuesAreRejectedAtConstruction) {
    // The device constructors are the first line of defense: negative
    // values never reach the linter (non-finite ones do -- see above).
    Circuit c;
    const int a = c.node("a");
    EXPECT_THROW(c.add_resistor("Rneg", a, Circuit::kGround, -50.0),
                 ModelError);
    EXPECT_THROW(c.add_capacitor("Cneg", a, Circuit::kGround, -1e-15),
                 ModelError);
}

TEST(CircuitLint, ShortedDevices) {
    Circuit c;
    const int a = c.node("a");
    c.add_vsource("Vin", a, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("Rload", a, Circuit::kGround, 1e3);
    c.add_resistor("Rshort", a, a, 1e3);
    c.add_vsource("Vshort", a, a, SourceSpec::dc(0.0));
    CircuitLintOptions opt;
    opt.structural = false;  // a self-looped V branch row is singular too;
                             // here we isolate the graph rules
    const LintReport report = lint_circuit(c, opt);
    EXPECT_TRUE(report.fired("circuit.shorted-passive")) << report.format();
    EXPECT_TRUE(report.fired("circuit.shorted-vsource"));
}

TEST(CircuitLint, DisconnectedSubgraphWarns) {
    Circuit c;
    const int a = c.node("a");
    const int i1 = c.node("i1");
    const int i2 = c.node("i2");
    c.add_vsource("Vin", a, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("Rload", a, Circuit::kGround, 1e3);
    c.add_vsource("Visland", i1, i2, SourceSpec::dc(1.0));
    c.add_resistor("Risland", i1, i2, 1e3);
    const LintReport report = lint_circuit(c);
    ASSERT_TRUE(report.fired("circuit.disconnected-subgraph"))
        << report.format();
    const Diagnostic* d = report.by_rule("circuit.disconnected-subgraph")[0];
    EXPECT_EQ(d->nodes.size(), 2u);
    EXPECT_TRUE(report.fired("circuit.no-dc-path"));
}

TEST(CircuitLint, DanglingTerminalSkipsGraphStages) {
    Circuit c;
    const int a = c.node("a");
    c.add_vsource("Vin", a, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("Rbad", a, 99, 1e3);  // node 99 was never created
    const LintReport report = lint_circuit(c);
    ASSERT_TRUE(report.fired("circuit.dangling-terminal")) << report.format();
    const Diagnostic* d = report.by_rule("circuit.dangling-terminal")[0];
    ASSERT_EQ(d->devices.size(), 1u);
    EXPECT_EQ(d->devices[0], "Rbad");
    // Connectivity/structural stages cannot run on out-of-range ids; the
    // report must still come back (no crash, no throw).
    EXPECT_FALSE(report.fired("circuit.structural-singularity"));
}

TEST(CircuitLint, EmptyCircuitWarns) {
    Circuit c;
    const LintReport report = lint_circuit(c);
    EXPECT_TRUE(report.fired("circuit.empty"));
    EXPECT_EQ(report.error_count(), 0u);
}

// Every transistor-level cell the repo ships, instantiated exactly as the
// characterizer drives it, must lint clean: the gate earns its place in
// front of the solvers only with a zero false-positive rate here.
TEST(CircuitLint, AllLibraryCellsLintClean) {
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);
    for (const std::string& name : lib.names()) {
        const cells::CellType& cell = lib.get(name);
        Circuit c;
        const int vdd = c.node("vdd");
        c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(tech.vdd));
        std::unordered_map<std::string, int> conn;
        conn[cells::kVdd] = vdd;
        conn[cells::kGnd] = Circuit::kGround;
        const int out = c.node("out");
        conn[cells::kOut] = out;
        for (const cells::PinInfo& pin : cell.inputs()) {
            const int n = c.node("in_" + pin.name);
            conn[pin.name] = n;
            c.add_vsource("V" + pin.name, n, Circuit::kGround,
                          SourceSpec::dc(0.0));
        }
        cell.instantiate(c, "X0", conn);
        // The unloaded output is a legitimate characterization setup: add
        // the load cap the benches use so the deck is fully representative.
        c.add_capacitor("Cload", out, Circuit::kGround, 5e-15);
        const LintReport report = lint_circuit(c);
        EXPECT_TRUE(report.empty())
            << "cell " << name << ":\n"
            << report.format();
    }
}

// --- model audit ---------------------------------------------------------

// Minimal shape-consistent SIS model with rail-covering axes; the knobs
// let each test seed exactly one defect.
core::CsmModel make_sis_model(double vdd = 1.2) {
    core::CsmModel m;
    m.kind = core::ModelKind::kSis;
    m.cell_name = "TEST_INV";
    m.vdd = vdd;
    m.dv_margin = 0.12;
    m.pins = {"A"};
    const std::vector<double> knots = {-0.12, 0.0, 0.6, 1.2, 1.32};
    const lut::Axis va("A", knots);
    const lut::Axis vo("out", knots);
    m.i_out = lut::NdTable({va, vo}, "Io");
    m.c_miller = {lut::NdTable({va, vo}, "Cm_A")};
    m.c_out = lut::NdTable({va, vo}, "Co");
    m.c_in = {lut::NdTable({va}, "Cin_A")};
    return m;
}

TEST(ModelAudit, CleanModelPasses) {
    const LintReport report = audit_model(make_sis_model());
    EXPECT_TRUE(report.empty()) << report.format();
}

TEST(ModelAudit, NanPayloadFires) {
    core::CsmModel m = make_sis_model();
    m.i_out.set_grid_value(std::vector<std::size_t>{2, 2}, std::nan(""));
    const LintReport report = audit_model(m);
    ASSERT_TRUE(report.fired("table.nonfinite-value")) << report.format();
    const Diagnostic* d = report.by_rule("table.nonfinite-value")[0];
    EXPECT_NE(d->message.find("Io"), std::string::npos);
}

TEST(ModelAudit, RequireCleanThrowsWithContext) {
    core::CsmModel m = make_sis_model();
    m.i_out.set_grid_value(std::vector<std::size_t>{0, 0}, kInf);
    const LintReport report = audit_model(m);
    const std::string what =
        what_of([&] { report.require_clean("UnitTest[TEST_INV]"); });
    EXPECT_NE(what.find("UnitTest[TEST_INV]"), std::string::npos) << what;
    EXPECT_NE(what.find("table.nonfinite-value"), std::string::npos) << what;
}

TEST(ModelAudit, KnotCoverageFires) {
    core::CsmModel m = make_sis_model();
    // Output axis stops at 0.9 V: the 1.2 V rail is outside the grid.
    m.i_out = lut::NdTable(
        {lut::Axis("A", {-0.12, 0.0, 0.6, 1.2, 1.32}),
         lut::Axis("out", {0.0, 0.45, 0.9})},
        "Io");
    const LintReport report = audit_model(m);
    EXPECT_TRUE(report.fired("model.knot-coverage")) << report.format();
}

TEST(ModelAudit, PhysicalRangeFires) {
    core::CsmModel bad_vdd = make_sis_model();
    bad_vdd.vdd = -1.0;
    EXPECT_TRUE(audit_model(bad_vdd).fired("model.physical-range"));

    core::CsmModel bad_temp = make_sis_model();
    bad_temp.temp_c = 1000.0;
    EXPECT_TRUE(audit_model(bad_temp).fired("model.physical-range"));
}

TEST(ModelAudit, DuplicatePinFires) {
    core::CsmModel m = make_sis_model();
    m.fixed_pins = {"A"};  // already a switching pin
    m.fixed_values = {0.0};
    EXPECT_TRUE(audit_model(m).fired("model.duplicate-pin"));
}

TEST(ModelAudit, InconsistentShapeShortCircuits) {
    core::CsmModel m = make_sis_model();
    m.c_in.clear();  // rank bookkeeping now disagrees with pins
    const LintReport report = audit_model(m);
    ASSERT_TRUE(report.fired("model.inconsistent-shape")) << report.format();
    // Shape errors end the audit: no table iteration over a broken layout.
    EXPECT_EQ(report.size(), 1u);
}

TEST(ModelAudit, NegativeCapacitanceWarns) {
    core::CsmModel m = make_sis_model();
    m.c_out.set_grid_value(std::vector<std::size_t>{1, 1}, -1e-15);
    const LintReport report = audit_model(m);
    EXPECT_TRUE(report.fired("model.negative-capacitance"))
        << report.format();
    EXPECT_EQ(report.error_count(), 0u);  // warning, not rejection
}

// --- surface audit -------------------------------------------------------

serve::ArcSurfaceData make_surface() {
    serve::ArcSurfaceData s;
    s.arc_id = "INV.SIS.A";
    s.dt = 1e-12;
    s.settle = 1e-9;
    const lut::Axis slew("slew_in", {1e-12, 1e-11, 1e-10});
    const lut::Axis load("cload", {1e-15, 5e-15, 2e-14});
    s.delay = lut::NdTable({slew, load}, "delay");
    s.slew = lut::NdTable({slew, load}, "slew");
    s.slew.fill([](std::span<const double>) { return 2e-11; });
    s.delay.fill([](std::span<const double>) { return -3e-12; });
    return s;
}

TEST(SurfaceAudit, CleanSurfacePasses) {
    // Note the negative delay values: legitimate (pin-0-referenced).
    const LintReport report = audit_surface(make_surface());
    EXPECT_TRUE(report.empty()) << report.format();
}

TEST(SurfaceAudit, NonpositiveSlewFires) {
    serve::ArcSurfaceData s = make_surface();
    s.slew.set_grid_value(std::vector<std::size_t>{1, 1}, 0.0);
    EXPECT_TRUE(audit_surface(s).fired("surface.nonpositive-slew"));
}

TEST(SurfaceAudit, BadParametersFire) {
    serve::ArcSurfaceData s = make_surface();
    s.dt = 0.0;
    EXPECT_TRUE(audit_surface(s).fired("surface.bad-parameters"));
}

// --- store-file audits ---------------------------------------------------

class TempDir {
public:
    TempDir() {
        static std::atomic<unsigned> counter{0};
        dir_ = fs::temp_directory_path() /
               ("mcsm_analysis_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        fs::create_directories(dir_);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }
    std::string root() const { return dir_.string(); }

private:
    fs::path dir_;
};

TEST(StoreAudit, TruncatedFileIsReportedNotThrown) {
    TempDir tmp;
    const std::string path = tmp.path("X.SIS.A.csm.bin");
    serve::save_model_binary(path, make_sis_model());
    // Chop the file mid-payload.
    std::string bytes;
    {
        std::ifstream is(path, std::ios::binary);
        std::stringstream ss;
        ss << is.rdbuf();
        bytes = ss.str();
    }
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    }
    const LintReport report = audit_file(path);
    ASSERT_TRUE(report.fired("store.unreadable")) << report.format();
    EXPECT_NE(report.by_rule("store.unreadable")[0]->message.find(path),
              std::string::npos);
}

TEST(StoreAudit, DirectoryScanMixesCleanAndBroken) {
    TempDir tmp;
    serve::save_model_binary(tmp.path("GOOD.SIS.A.csm.bin"), make_sis_model());
    {
        std::ofstream os(tmp.path("BAD.SIS.A.csm.bin"), std::ios::binary);
        os << "not a store file";
    }
    const LintReport report = audit_path(tmp.root());
    EXPECT_TRUE(report.fired("store.scanned")) << report.format();
    EXPECT_EQ(report.error_count(), 1u) << report.format();
    EXPECT_TRUE(report.fired("store.unreadable"));
}

TEST(StoreAudit, MissingPathIsAnError) {
    EXPECT_TRUE(audit_path("/nonexistent/mcsm/store")
                    .fired("store.unreadable"));
}

// --- hardened load paths -------------------------------------------------

TEST(LoadHardening, TextTableRejectsNanValue) {
    std::istringstream is(
        "table T 1\naxis x 2 0.0 1.0\nvalues 2 nan 1.0\nend\n");
    const std::string what = what_of([&] { lut::read_table(is); });
    EXPECT_NE(what.find("not finite"), std::string::npos) << what;
}

TEST(LoadHardening, TextTableRejectsNonMonotoneAxis) {
    std::istringstream is(
        "table T 1\naxis x 2 1.0 0.0\nvalues 2 0.0 0.0\nend\n");
    const std::string what = what_of([&] { lut::read_table(is); });
    EXPECT_NE(what.find("strictly increasing"), std::string::npos) << what;
}

TEST(LoadHardening, TextTableRejectsNanKnot) {
    std::istringstream is(
        "table T 1\naxis x 2 nan 1.0\nvalues 2 0.0 0.0\nend\n");
    const std::string what = what_of([&] { lut::read_table(is); });
    EXPECT_NE(what.find("not finite"), std::string::npos) << what;
}

TEST(LoadHardening, TextModelRejectsBadHeader) {
    core::CsmModel m = make_sis_model();
    m.vdd = -1.0;  // write_model only checks shape, so this serializes
    std::ostringstream os;
    core::write_model(os, m);
    std::istringstream is(os.str());
    const std::string what = what_of([&] { core::read_model(is); });
    EXPECT_NE(what.find("vdd"), std::string::npos) << what;
}

TEST(LoadHardening, BinaryModelRejectsNanPayload) {
    core::CsmModel m = make_sis_model();
    m.i_out.set_grid_value(std::vector<std::size_t>{1, 1}, std::nan(""));
    std::ostringstream os;
    serve::write_model_binary(os, m);
    std::istringstream is(os.str());
    const std::string what = what_of([&] { serve::read_model_binary(is); });
    EXPECT_NE(what.find("not finite"), std::string::npos) << what;
}

TEST(LoadHardening, BinaryModelRejectsBadVdd) {
    core::CsmModel m = make_sis_model();
    m.vdd = kInf;
    std::ostringstream os;
    serve::write_model_binary(os, m);
    std::istringstream is(os.str());
    const std::string what = what_of([&] { serve::read_model_binary(is); });
    EXPECT_NE(what.find("vdd"), std::string::npos) << what;
}

// --- repository admission gate -------------------------------------------

TEST(RepositoryLint, DefectiveStoreModelIsRejectedOnLoad) {
    TempDir tmp;
    // Parses fine (finite, monotone) but audits dirty: the output axis
    // misses the rail, so only lint_on_load can catch it.
    core::CsmModel m = make_sis_model();
    m.i_out = lut::NdTable(
        {lut::Axis("A", {-0.12, 0.0, 0.6, 1.2, 1.32}),
         lut::Axis("out", {0.0, 0.45, 0.9})},
        "Io");
    const serve::ModelKey key = serve::ModelKey::arc("TEST_INV", {"A"});

    serve::RepositoryOptions opt;
    opt.dir = tmp.root();
    serve::ModelRepository writer(nullptr, opt);
    // put() runs the same gate: the defective model must not enter.
    EXPECT_THROW(writer.put(key, m), ModelError);

    opt.lint_on_load = false;
    serve::ModelRepository lax_writer(nullptr, opt);
    lax_writer.put(key, m);  // gate off: persists to the store dir

    opt.lint_on_load = true;
    serve::ModelRepository reader(nullptr, opt);
    const std::string what = what_of([&] { reader.get(key); });
    EXPECT_NE(what.find("ModelRepository[TEST_INV.SIS.A]"), std::string::npos)
        << what;
    EXPECT_NE(what.find("model.knot-coverage"), std::string::npos) << what;
    EXPECT_FALSE(reader.cached(key));  // failed audits are never cached

    opt.lint_on_load = false;
    serve::ModelRepository lax_reader(nullptr, opt);
    EXPECT_EQ(lax_reader.get(key)->cell_name, "TEST_INV");
}

TEST(RepositoryLint, CleanModelPassesTheGate) {
    TempDir tmp;
    serve::RepositoryOptions opt;
    opt.dir = tmp.root();
    serve::ModelRepository repo(nullptr, opt);
    const serve::ModelKey key = serve::ModelKey::arc("TEST_INV", {"A"});
    repo.put(key, make_sis_model());
    EXPECT_EQ(repo.get(key)->cell_name, "TEST_INV");
    EXPECT_TRUE(repo.options().lint_on_load);  // on by default
}

}  // namespace
}  // namespace mcsm::analysis
