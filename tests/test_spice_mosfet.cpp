// MOSFET model tests: I-V properties, symmetry, body effect, capacitances,
// and inverter-level behaviour of the 130nm-class card.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "spice/tran_solver.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm::spice {
namespace {

using mcsm::tech::Technology;
using mcsm::tech::make_tech130;

class MosfetModel : public ::testing::Test {
protected:
    MosfetModel() : tech_(make_tech130()) {}

    // Standalone device for direct model evaluation (not added to a circuit).
    Mosfet nmos_{"MN", 1, 2, 3, 0, tech_.nmos, 0.52e-6, 0.13e-6};
    Mosfet pmos_{"MP", 1, 2, 3, 0, tech_.pmos, 1.04e-6, 0.13e-6};
    Technology tech_;
};

TEST_F(MosfetModel, CurrentIsZeroAtZeroVds) {
    for (double vg = 0.0; vg <= 1.2; vg += 0.2) {
        const MosCurrent c = nmos_.evaluate_current(0.6, vg, 0.6, 0.0);
        EXPECT_NEAR(c.ids, 0.0, 1e-15) << "vg=" << vg;
    }
}

TEST_F(MosfetModel, DrainSourceSymmetry) {
    // Swapping drain and source negates the current (needed for the stack
    // node, which charges through a device in the "reverse" direction).
    for (double vg = 0.3; vg <= 1.2; vg += 0.3) {
        const MosCurrent fwd = nmos_.evaluate_current(0.8, vg, 0.2, 0.0);
        const MosCurrent rev = nmos_.evaluate_current(0.2, vg, 0.8, 0.0);
        EXPECT_NEAR(fwd.ids, -rev.ids, std::fabs(fwd.ids) * 1e-9);
    }
}

TEST_F(MosfetModel, OnCurrentInPlausibleRange) {
    // 130nm-class unit NMOS on-current: order of 0.1-1 mA.
    const MosCurrent c = nmos_.evaluate_current(1.2, 1.2, 0.0, 0.0);
    EXPECT_GT(c.ids, 5e-5);
    EXPECT_LT(c.ids, 2e-3);
    // Subthreshold current is orders of magnitude lower.
    const MosCurrent off = nmos_.evaluate_current(1.2, 0.0, 0.0, 0.0);
    EXPECT_LT(off.ids, c.ids * 1e-3);
    EXPECT_GT(off.ids, 0.0);
}

TEST_F(MosfetModel, CurrentMonotonicInVgs) {
    double prev = -1.0;
    for (double vg = 0.0; vg <= 1.3; vg += 0.05) {
        const double i = nmos_.evaluate_current(1.2, vg, 0.0, 0.0).ids;
        EXPECT_GT(i, prev);
        prev = i;
    }
}

TEST_F(MosfetModel, CurrentMonotonicInVds) {
    double prev = -1.0;
    for (double vd = 0.0; vd <= 1.3; vd += 0.05) {
        const double i = nmos_.evaluate_current(vd, 1.2, 0.0, 0.0).ids;
        EXPECT_GE(i, prev);
        prev = i;
    }
}

TEST_F(MosfetModel, BodyEffectRaisesThreshold) {
    // With source lifted above bulk, the same vgs delivers less current.
    const double i_no_body = nmos_.evaluate_current(1.2, 0.8, 0.0, 0.0).ids;
    const double i_body = nmos_.evaluate_current(1.6, 1.2, 0.4, 0.0).ids;
    EXPECT_LT(i_body, i_no_body);
    EXPECT_GT(i_body, 0.1 * i_no_body);  // effect is moderate, not a cutoff
}

TEST_F(MosfetModel, DerivativesMatchFiniteDifferences) {
    const double h = 1e-7;
    const struct {
        double vd, vg, vs, vb;
    } points[] = {{1.2, 1.2, 0.0, 0.0}, {0.6, 0.8, 0.1, 0.0},
                  {0.05, 1.0, 0.0, 0.0}, {1.0, 0.25, 0.3, 0.0},
                  {0.2, 0.9, 0.8, 0.0}};
    for (const auto& p : points) {
        const MosCurrent c = nmos_.evaluate_current(p.vd, p.vg, p.vs, p.vb);
        const double fd_gm =
            (nmos_.evaluate_current(p.vd, p.vg + h, p.vs, p.vb).ids -
             nmos_.evaluate_current(p.vd, p.vg - h, p.vs, p.vb).ids) /
            (2 * h);
        const double fd_gds =
            (nmos_.evaluate_current(p.vd + h, p.vg, p.vs, p.vb).ids -
             nmos_.evaluate_current(p.vd - h, p.vg, p.vs, p.vb).ids) /
            (2 * h);
        const double fd_gms =
            (nmos_.evaluate_current(p.vd, p.vg, p.vs + h, p.vb).ids -
             nmos_.evaluate_current(p.vd, p.vg, p.vs - h, p.vb).ids) /
            (2 * h);
        const double fd_gmb =
            (nmos_.evaluate_current(p.vd, p.vg, p.vs, p.vb + h).ids -
             nmos_.evaluate_current(p.vd, p.vg, p.vs, p.vb - h).ids) /
            (2 * h);
        const double scale = std::max(1e-6, std::fabs(c.ids));
        EXPECT_NEAR(c.gm, fd_gm, 1e-4 * scale + 1e-9);
        EXPECT_NEAR(c.gds, fd_gds, 1e-4 * scale + 1e-9);
        EXPECT_NEAR(c.gms, fd_gms, 1e-4 * scale + 1e-9);
        EXPECT_NEAR(c.gmb, fd_gmb, 1e-4 * scale + 1e-9);
    }
}

TEST_F(MosfetModel, PmosMirrorsNmos) {
    // A PMOS with source at VDD and gate at 0 conducts (drain below source).
    const MosCurrent on = pmos_.evaluate_current(0.0, 0.0, 1.2, 1.2);
    EXPECT_LT(on.ids, -5e-5);  // current flows source->drain, i.e. ids < 0
    const MosCurrent off = pmos_.evaluate_current(0.0, 1.2, 1.2, 1.2);
    EXPECT_GT(std::fabs(on.ids), std::fabs(off.ids) * 1e3);
}

TEST_F(MosfetModel, CapsPositiveAndRegionDependent) {
    // Cutoff: gate-bulk dominates. Strong inversion: gate-channel dominates.
    const MosCaps off = nmos_.evaluate_caps(1.2, 0.0, 0.0, 0.0);
    const MosCaps sat = nmos_.evaluate_caps(1.2, 1.2, 0.0, 0.0);
    const MosCaps triode = nmos_.evaluate_caps(0.05, 1.2, 0.0, 0.0);
    for (const MosCaps& c : {off, sat, triode}) {
        EXPECT_GT(c.cgs, 0.0);
        EXPECT_GT(c.cgd, 0.0);
        EXPECT_GE(c.cgb, 0.0);
        EXPECT_GT(c.cdb, 0.0);
        EXPECT_GT(c.csb, 0.0);
    }
    EXPECT_GT(off.cgb, sat.cgb);      // channel screens the bulk when on
    EXPECT_GT(sat.cgs, off.cgs);      // inversion charge at the source side
    EXPECT_GT(triode.cgd, sat.cgd);   // drain side only inverted in triode
    // Junction cap shrinks with reverse bias.
    const MosCaps rev = nmos_.evaluate_caps(1.2, 0.0, 0.0, 0.0);
    const MosCaps zero = nmos_.evaluate_caps(0.0, 0.0, 0.0, 0.0);
    EXPECT_LT(rev.cdb, zero.cdb);
}

// --- circuit-level --------------------------------------------------------

class InverterFixture : public ::testing::Test {
protected:
    InverterFixture() : tech_(make_tech130()) {}

    // Builds an inverter driven by `input_spec`, loaded by cl farads.
    void build(SourceSpec input_spec, double cl) {
        vdd_ = circuit_.node("vdd");
        in_ = circuit_.node("in");
        out_ = circuit_.node("out");
        circuit_.add_vsource("VDD", vdd_, Circuit::kGround,
                             SourceSpec::dc(tech_.vdd));
        circuit_.add_vsource("VIN", in_, Circuit::kGround, std::move(input_spec));
        circuit_.add_mosfet("MN", out_, in_, Circuit::kGround, Circuit::kGround,
                            tech_.nmos, tech_.wn_unit, tech_.lmin);
        circuit_.add_mosfet("MP", out_, in_, vdd_, vdd_, tech_.pmos,
                            tech_.wp_unit, tech_.lmin);
        if (cl > 0.0)
            circuit_.add_capacitor("CL", out_, Circuit::kGround, cl);
    }

    Technology tech_;
    Circuit circuit_;
    int vdd_ = -1;
    int in_ = -1;
    int out_ = -1;
};

TEST_F(InverterFixture, DcTransferCurveIsInverting) {
    build(SourceSpec::dc(0.0), 0.0);
    DcOptions opt;
    DcResult r = solve_dc(circuit_, opt);
    EXPECT_NEAR(r.node_voltage(out_), tech_.vdd, 0.02);

    // Sweep the input with warm starts; output must fall monotonically.
    double prev_out = r.node_voltage(out_) + 1e-9;
    for (double vin = 0.0; vin <= 1.2 + 1e-9; vin += 0.05) {
        circuit_.vsource("VIN").set_spec(SourceSpec::dc(vin));
        r = solve_dc(circuit_, opt, &r.x);
        const double vout = r.node_voltage(out_);
        EXPECT_LT(vout, prev_out + 1e-7) << "vin=" << vin;
        prev_out = vout;
    }
    EXPECT_NEAR(prev_out, 0.0, 0.02);
}

TEST_F(InverterFixture, SwitchingThresholdNearMidRail) {
    build(SourceSpec::dc(0.6), 0.0);
    const DcResult r = solve_dc(circuit_);
    const double vout = r.node_voltage(out_);
    EXPECT_GT(vout, 0.2);
    EXPECT_LT(vout, 1.0);
}

TEST_F(InverterFixture, TransientInvertsARamp) {
    build(SourceSpec::pwl(wave::saturated_ramp(0.2e-9, 80e-12, 0.0, 1.2)),
          5e-15);
    TranOptions opt;
    opt.tstop = 1.5e-9;
    opt.dt = 1e-12;
    const TranResult r = solve_tran(circuit_, opt);
    const wave::Waveform vout = r.node_waveform(out_);
    EXPECT_NEAR(vout.at(0.0), 1.2, 0.02);
    EXPECT_NEAR(vout.last_value(), 0.0, 0.02);
}

TEST_F(InverterFixture, DelayGrowsWithLoad) {
    double prev_delay = 0.0;
    for (const double cl : {2e-15, 8e-15, 20e-15}) {
        Circuit fresh;
        circuit_ = std::move(fresh);
        build(SourceSpec::pwl(wave::saturated_ramp(0.2e-9, 80e-12, 0.0, 1.2)),
              cl);
        TranOptions opt;
        opt.tstop = 3e-9;
        opt.dt = 1e-12;
        const TranResult r = solve_tran(circuit_, opt);
        const wave::Waveform vin = r.node_waveform(in_);
        const wave::Waveform vout = r.node_waveform(out_);
        const auto d = wave::delay_50(vin, true, vout, false, tech_.vdd);
        ASSERT_TRUE(d.has_value()) << "cl=" << cl;
        EXPECT_GT(*d, prev_delay);
        prev_delay = *d;
    }
    // Heaviest load should still switch within a couple of ns.
    EXPECT_LT(prev_delay, 1e-9);
}

}  // namespace
}  // namespace mcsm::spice
