// Unit and property tests for the N-D lookup tables.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "lut/axis.h"
#include "lut/ndtable.h"
#include "lut/table_io.h"

namespace mcsm::lut {
namespace {

TEST(Axis, LocateClampsAndNormalizes) {
    Axis ax("v", {0.0, 1.0, 3.0});
    auto loc = ax.locate(0.5);
    EXPECT_EQ(loc.index, 0u);
    EXPECT_DOUBLE_EQ(loc.u, 0.5);
    loc = ax.locate(2.0);
    EXPECT_EQ(loc.index, 1u);
    EXPECT_DOUBLE_EQ(loc.u, 0.5);
    loc = ax.locate(-10.0);
    EXPECT_EQ(loc.index, 0u);
    EXPECT_DOUBLE_EQ(loc.u, 0.0);
    loc = ax.locate(10.0);
    EXPECT_EQ(loc.index, 1u);
    EXPECT_DOUBLE_EQ(loc.u, 1.0);
}

TEST(Axis, RejectsBadKnots) {
    EXPECT_THROW(Axis("v", {0.0}), ModelError);
    EXPECT_THROW(Axis("v", {0.0, 0.0}), ModelError);
    EXPECT_THROW(Axis("v", {1.0, 0.0}), ModelError);
}

TEST(NdTable, ReproducesGridValuesExactly) {
    NdTable t({Axis::uniform("x", 0.0, 1.0, 5), Axis::uniform("y", -1.0, 1.0, 4)},
              "f");
    t.fill([](std::span<const double> x) { return 3.0 * x[0] - x[1] * x[1]; });
    t.for_each_grid_point([&](std::span<const std::size_t>,
                              std::span<const double> x, double& v) {
        const std::array<double, 2> q{x[0], x[1]};
        EXPECT_DOUBLE_EQ(t.at(q), v);
    });
}

TEST(NdTable, InterpolatesMultilinearFunctionExactly) {
    // A multilinear function is reproduced exactly everywhere, including
    // cross terms.
    NdTable t({Axis::uniform("x", 0.0, 2.0, 3), Axis::uniform("y", 0.0, 2.0, 4),
               Axis::uniform("z", -1.0, 1.0, 3)});
    auto f = [](std::span<const double> x) {
        return 1.0 + 2.0 * x[0] - 0.5 * x[1] + x[2] + 0.25 * x[0] * x[1] * x[2];
    };
    t.fill(f);
    for (double x = 0.1; x < 2.0; x += 0.31) {
        for (double y = 0.05; y < 2.0; y += 0.43) {
            for (double z = -0.95; z < 1.0; z += 0.27) {
                const std::array<double, 3> q{x, y, z};
                EXPECT_NEAR(t.at(q), f(q), 1e-12);
            }
        }
    }
}

TEST(NdTable, GradientMatchesFiniteDifference) {
    NdTable t({Axis::uniform("x", 0.0, 1.0, 6), Axis::uniform("y", 0.0, 1.0, 5)});
    t.fill([](std::span<const double> x) {
        return std::sin(3.0 * x[0]) * std::cos(2.0 * x[1]);
    });
    const double h = 1e-8;
    for (double x = 0.07; x < 1.0; x += 0.17) {
        for (double y = 0.03; y < 1.0; y += 0.19) {
            std::array<double, 2> g{};
            const std::array<double, 2> q{x, y};
            t.at_with_gradient(q, g);
            const std::array<double, 2> qx1{x + h, y};
            const std::array<double, 2> qx0{x - h, y};
            const std::array<double, 2> qy1{x, y + h};
            const std::array<double, 2> qy0{x, y - h};
            EXPECT_NEAR(g[0], (t.at(qx1) - t.at(qx0)) / (2 * h), 1e-5);
            EXPECT_NEAR(g[1], (t.at(qy1) - t.at(qy0)) / (2 * h), 1e-5);
        }
    }
}

TEST(NdTable, ClampsOutsideAxes) {
    NdTable t({Axis::uniform("x", 0.0, 1.0, 2)});
    t.fill([](std::span<const double> x) { return x[0]; });
    const std::array<double, 1> below{-5.0};
    const std::array<double, 1> above{7.0};
    EXPECT_DOUBLE_EQ(t.at(below), 0.0);
    EXPECT_DOUBLE_EQ(t.at(above), 1.0);
    // Gradient inside the clamped edge cell is still the cell slope.
    std::array<double, 1> g{};
    t.at_with_gradient(above, g);
    EXPECT_DOUBLE_EQ(g[0], 1.0);
}

TEST(NdTable, FourDimensionalRoundTrip) {
    // The paper's 4-D use case: (VA, VB, VN, Vo).
    std::vector<Axis> axes;
    for (const char* n : {"va", "vb", "vn", "vo"})
        axes.push_back(Axis::uniform(n, -0.12, 1.32, 5));
    NdTable t(std::move(axes), "Io");
    t.fill([](std::span<const double> x) {
        return x[0] - 2.0 * x[1] + 0.5 * x[2] * x[3];
    });
    EXPECT_EQ(t.rank(), 4u);
    EXPECT_EQ(t.value_count(), 625u);
    const std::array<double, 4> q{0.3, 0.7, 1.0, 0.1};
    EXPECT_NEAR(t.at(q), 0.3 - 1.4 + 0.5 * 1.0 * 0.1, 1e-12);
}

TEST(TableIo, WriteReadRoundTrip) {
    NdTable t({Axis("va", {-0.12, 0.0, 0.6, 1.2, 1.32}),
               Axis::uniform("vo", 0.0, 1.2, 3)},
              "Io");
    t.fill([](std::span<const double> x) { return x[0] * 7.0 - x[1]; });
    std::stringstream ss;
    write_table(ss, t);
    const NdTable u = read_table(ss);
    EXPECT_EQ(u.name(), "Io");
    ASSERT_EQ(u.rank(), 2u);
    EXPECT_EQ(u.axis(0).name(), "va");
    ASSERT_EQ(u.value_count(), t.value_count());
    for (std::size_t i = 0; i < t.value_count(); ++i)
        EXPECT_DOUBLE_EQ(u.values()[i], t.values()[i]);
}

TEST(TableIo, RejectsGarbage) {
    std::stringstream ss("not a table");
    EXPECT_THROW(read_table(ss), mcsm::ModelError);
}

}  // namespace
}  // namespace mcsm::lut
