// Failure-injection and validation tests: malformed models, bad IO, bad
// device wiring, and bad solver/characterizer options must fail loudly, not
// corrupt results.
#include <gtest/gtest.h>

#include <sstream>

#include "core/characterizer.h"
#include "core/csm_device.h"
#include "core/explicit_sim.h"
#include "core/model_io.h"
#include "core/model_scenarios.h"
#include "core/selective.h"
#include "spice/tran_solver.h"
#include "tech/tech130.h"
#include "wave/edges.h"

namespace mcsm::core {
namespace {

struct Shared {
    tech::Technology tech = tech::make_tech130();
    cells::CellLibrary lib{tech};
    CsmModel inv;
    CsmModel nor;

    static const Shared& get() {
        static Shared s;
        return s;
    }

private:
    Shared() {
        const Characterizer chr(lib);
        CharOptions fast;
        fast.transient_caps = false;
        fast.grid_points = 7;
        inv = chr.characterize("INV_X1", ModelKind::kSis, {"A"}, fast);
        nor = chr.characterize("NOR2", ModelKind::kMcsm, {"A", "B"}, fast);
    }
};

// --- characterizer option validation ---------------------------------------

TEST(CharacterizerValidation, RejectsUnknownCell) {
    const Shared& s = Shared::get();
    const Characterizer chr(s.lib);
    EXPECT_THROW(chr.characterize("XOR9", ModelKind::kSis, {"A"}), ModelError);
}

TEST(CharacterizerValidation, RejectsUnknownPin) {
    const Shared& s = Shared::get();
    const Characterizer chr(s.lib);
    EXPECT_THROW(chr.characterize("NOR2", ModelKind::kMcsm, {"A", "Z"}),
                 ModelError);
}

TEST(CharacterizerValidation, RejectsSisWithTwoPins) {
    const Shared& s = Shared::get();
    const Characterizer chr(s.lib);
    EXPECT_THROW(chr.characterize("NOR2", ModelKind::kSis, {"A", "B"}),
                 ModelError);
}

TEST(CharacterizerValidation, RejectsEmptyPinList) {
    const Shared& s = Shared::get();
    const Characterizer chr(s.lib);
    EXPECT_THROW(chr.characterize("NOR2", ModelKind::kMcsm, {}), ModelError);
}

TEST(CharacterizerValidation, RejectsTinyGrid) {
    const Shared& s = Shared::get();
    const Characterizer chr(s.lib);
    CharOptions opt;
    opt.grid_points = 3;
    EXPECT_THROW(chr.characterize("INV_X1", ModelKind::kSis, {"A"}, opt),
                 ModelError);
}

// --- model structural validation --------------------------------------------

TEST(ModelValidation, DetectsRankMismatch) {
    const Shared& s = Shared::get();
    CsmModel broken = s.nor;
    broken.i_out = s.inv.i_out;  // 2-D table in a 4-D model
    EXPECT_THROW(broken.check_consistent(), ModelError);
}

TEST(ModelValidation, DetectsMissingInternalTables) {
    const Shared& s = Shared::get();
    CsmModel broken = s.nor;
    broken.i_internal.clear();
    EXPECT_THROW(broken.check_consistent(), ModelError);
}

TEST(ModelValidation, DetectsNonMcsmWithInternals) {
    const Shared& s = Shared::get();
    CsmModel broken = s.nor;
    broken.kind = ModelKind::kMisBaseline;  // still carries internals
    EXPECT_THROW(broken.check_consistent(), ModelError);
}

TEST(ModelValidation, DetectsWrongCinCount) {
    const Shared& s = Shared::get();
    CsmModel broken = s.nor;
    broken.c_in.pop_back();
    EXPECT_THROW(broken.check_consistent(), ModelError);
}

// --- model IO failure injection ---------------------------------------------

TEST(ModelIoValidation, RoundTripThenTruncationFails) {
    const Shared& s = Shared::get();
    std::stringstream ss;
    write_model(ss, s.nor);
    const std::string text = ss.str();

    // Any truncation must throw, never return a half-read model.
    for (const double frac : {0.1, 0.5, 0.9, 0.999}) {
        std::stringstream cut(
            text.substr(0, static_cast<std::size_t>(text.size() * frac)));
        EXPECT_THROW(read_model(cut), ModelError) << frac;
    }
}

TEST(ModelIoValidation, RejectsWrongHeaderAndKind) {
    std::stringstream bad1("notamodel v1\n");
    EXPECT_THROW(read_model(bad1), ModelError);
    std::stringstream bad2("csmmodel v1\nkind FANCY\n");
    EXPECT_THROW(read_model(bad2), ModelError);
}

TEST(ModelIoValidation, MissingFileThrows) {
    EXPECT_THROW(load_model("/nonexistent/dir/model.csm"), ModelError);
}

// --- device wiring validation ------------------------------------------------

TEST(DeviceValidation, RejectsWrongPinNodeCount) {
    const Shared& s = Shared::get();
    spice::Circuit c;
    const int n1 = c.node("n1");
    EXPECT_THROW(CsmCellDevice("X", s.nor, {n1}, {c.node("int")},
                               c.node("out")),
                 ModelError);
}

TEST(DeviceValidation, RejectsWrongInternalNodeCount) {
    const Shared& s = Shared::get();
    spice::Circuit c;
    EXPECT_THROW(CsmCellDevice("X", s.nor, {c.node("a"), c.node("b")}, {},
                               c.node("out")),
                 ModelError);
}

TEST(DeviceValidation, LutCapRejectsNon1DTable) {
    const Shared& s = Shared::get();
    spice::Circuit c;
    EXPECT_THROW(LutCapDevice("C", s.nor.i_out, c.node("n")), ModelError);
}

TEST(DeviceValidation, CircuitRejectsDuplicateDeviceNames) {
    spice::Circuit c;
    const int n = c.node("n");
    c.add_resistor("R1", n, spice::Circuit::kGround, 1e3);
    EXPECT_THROW(c.add_resistor("R1", n, spice::Circuit::kGround, 2e3),
                 ModelError);
}

// --- scenario / simulator validation -----------------------------------------

TEST(ScenarioValidation, ModelCellRequiresAllPinWaveforms) {
    const Shared& s = Shared::get();
    ModelLoadSpec load;
    load.cap = 1e-15;
    const auto a = wave::saturated_ramp(1e-9, 0.1e-9, s.tech.vdd, 0.0);
    EXPECT_THROW(ModelCell(s.nor, {{"A", a}}, load), ModelError);
}

TEST(ScenarioValidation, FanoutLoadNeedsReceiver) {
    const Shared& s = Shared::get();
    ModelLoadSpec load;
    load.fanout_count = 2;  // receiver left null
    const auto a = wave::saturated_ramp(1e-9, 0.1e-9, s.tech.vdd, 0.0);
    const auto b = wave::Waveform::constant(0.0);
    EXPECT_THROW(ModelCell(s.nor, {{"A", a}, {"B", b}}, load), ModelError);
}

TEST(ScenarioValidation, ExplicitSimRejectsBadArguments) {
    const Shared& s = Shared::get();
    ExplicitOptions opt;
    const auto a = wave::saturated_ramp(1e-9, 0.1e-9, s.tech.vdd, 0.0);
    // Wrong input count.
    EXPECT_THROW(simulate_explicit(s.nor, {a}, opt), ModelError);
    // Bad time grid.
    opt.dt = -1.0;
    const auto b = wave::Waveform::constant(0.0);
    EXPECT_THROW(simulate_explicit(s.nor, {a, b}, opt), ModelError);
    // Wrong initial-state arity.
    ExplicitOptions opt2;
    opt2.initial_state = {0.0};  // needs internals + out = 2 entries
    EXPECT_THROW(simulate_explicit(s.nor, {a, b}, opt2), ModelError);
}

TEST(ScenarioValidation, TranRejectsBadTimeGrid) {
    spice::Circuit c;
    c.add_resistor("R", c.node("n"), spice::Circuit::kGround, 1e3);
    spice::TranOptions opt;
    opt.tstop = -1.0;
    EXPECT_THROW(spice::solve_tran(c, opt), ModelError);
}

TEST(ScenarioValidation, SelectiveRequiresMcsmComplete) {
    const Shared& s = Shared::get();
    EXPECT_THROW(select_model(s.inv, s.inv, 1e-15), ModelError);
}

// --- characterizer ramp-margin guard ------------------------------------------

TEST(CharacterizerValidation, TransientCapsGuardAgainstCoarseDt) {
    const Shared& s = Shared::get();
    const Characterizer chr(s.lib);
    CharOptions opt;
    opt.grid_points = 5;
    opt.transient_caps = true;
    opt.dt = 40e-12;  // far too coarse: knot samples land on ramp corners
    EXPECT_THROW(chr.characterize("INV_X1", ModelKind::kSis, {"A"}, opt),
                 ModelError);
}

}  // namespace
}  // namespace mcsm::core
