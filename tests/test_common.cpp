// Unit tests for src/common: numerics, dense LU, table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/dense_matrix.h"
#include "common/error.h"
#include "common/linear_solver.h"
#include "common/numeric.h"
#include "common/table_printer.h"

namespace mcsm {
namespace {

TEST(Softplus, MatchesReferenceInMidRange) {
    for (double x = -20.0; x <= 20.0; x += 0.37) {
        EXPECT_NEAR(softplus(x), std::log1p(std::exp(x)), 1e-12);
    }
}

TEST(Softplus, LargeArgumentsAreLinearAndSafe) {
    EXPECT_DOUBLE_EQ(softplus(1000.0), 1000.0);
    EXPECT_NEAR(softplus(-1000.0), 0.0, 1e-300);
    EXPECT_TRUE(std::isfinite(softplus(1e308)));
}

TEST(Logistic, IsDerivativeOfSoftplus) {
    const double h = 1e-6;
    for (double x = -30.0; x <= 30.0; x += 1.3) {
        const double fd = (softplus(x + h) - softplus(x - h)) / (2 * h);
        EXPECT_NEAR(logistic(x), fd, 1e-6) << "x=" << x;
    }
}

TEST(Logistic, Symmetry) {
    for (double x = 0.0; x < 40.0; x += 2.1) {
        EXPECT_NEAR(logistic(x) + logistic(-x), 1.0, 1e-12);
    }
}

TEST(SmoothAbs, ZeroAtZeroAndApproachesAbs) {
    EXPECT_DOUBLE_EQ(smooth_abs(0.0, 1e-3), 0.0);
    EXPECT_NEAR(smooth_abs(5.0, 1e-3), 5.0, 1e-3);
    EXPECT_NEAR(smooth_abs(-5.0, 1e-3), 5.0, 1e-3);
}

TEST(SmoothAbs, DerivativeMatchesFiniteDifference) {
    const double eps = 1e-2;
    const double h = 1e-7;
    for (double x = -1.0; x <= 1.0; x += 0.11) {
        const double fd = (smooth_abs(x + h, eps) - smooth_abs(x - h, eps)) / (2 * h);
        EXPECT_NEAR(smooth_abs_deriv(x, eps), fd, 1e-5);
    }
}

TEST(Linspace, EndpointsExactAndSpacingUniform) {
    const auto v = linspace(-0.12, 1.32, 13);
    ASSERT_EQ(v.size(), 13u);
    EXPECT_DOUBLE_EQ(v.front(), -0.12);
    EXPECT_DOUBLE_EQ(v.back(), 1.32);
    for (std::size_t i = 1; i < v.size(); ++i)
        EXPECT_NEAR(v[i] - v[i - 1], 0.12, 1e-12);
}

TEST(Bracket, FindsEnclosingSegmentAndClamps) {
    const std::vector<double> xs{0.0, 1.0, 2.0, 5.0};
    EXPECT_EQ(bracket(xs, -3.0), 0u);
    EXPECT_EQ(bracket(xs, 0.5), 0u);
    EXPECT_EQ(bracket(xs, 1.0), 1u);
    EXPECT_EQ(bracket(xs, 4.9), 2u);
    EXPECT_EQ(bracket(xs, 99.0), 2u);
}

TEST(DenseMatrix, MultiplyAndMaxAbs) {
    DenseMatrix a(2, 3);
    a.at(0, 0) = 1.0;
    a.at(0, 2) = -4.0;
    a.at(1, 1) = 2.0;
    const auto y = a.multiply({1.0, 2.0, 3.0});
    ASSERT_EQ(y.size(), 2u);
    EXPECT_DOUBLE_EQ(y[0], -11.0);
    EXPECT_DOUBLE_EQ(y[1], 4.0);
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(LinearSolver, SolvesRandomSystemExactly) {
    // Hand-picked well-conditioned system.
    DenseMatrix a(3, 3);
    const double rows[3][3] = {{4, 1, 0}, {1, 3, -1}, {0, -1, 5}};
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c) a.at(r, c) = rows[r][c];
    const std::vector<double> x_true{1.0, -2.0, 0.5};
    auto b = a.multiply(x_true);
    const auto x = solve_lu(a, b);
    for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-12);
}

TEST(LinearSolver, RequiresPivoting) {
    // Zero on the diagonal forces a row swap.
    DenseMatrix a(2, 2);
    a.at(0, 0) = 0.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 2.0;
    a.at(1, 1) = 1.0;
    std::vector<double> b{3.0, 4.0};
    const auto x = solve_lu(a, b);
    EXPECT_NEAR(x[0], 0.5, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolver, ThrowsOnSingular) {
    DenseMatrix a(2, 2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 2.0;
    a.at(1, 1) = 4.0;
    std::vector<double> b{1.0, 2.0};
    EXPECT_THROW(solve_lu(a, b), NumericalError);
}

TEST(TablePrinter, CsvRoundTrip) {
    TablePrinter t({"a", "b"});
    t.add_row({"1", "x"});
    t.add_row({"2", "y"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,x\n2,y\n");
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, RejectsRaggedRows) {
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ModelError);
}

}  // namespace
}  // namespace mcsm
