// SPICE-deck parser tests: numbers with engineering suffixes, every element
// kind, model cards, and syntax-error reporting.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/dc_solver.h"
#include "spice/netlist_parser.h"
#include "spice/tran_solver.h"

namespace mcsm::spice {
namespace {

TEST(SpiceNumber, EngineeringSuffixes) {
    EXPECT_DOUBLE_EQ(parse_spice_number("1"), 1.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("2.5k"), 2500.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("10f"), 10e-15);
    EXPECT_DOUBLE_EQ(parse_spice_number("0.13u"), 0.13e-6);
    EXPECT_DOUBLE_EQ(parse_spice_number("3meg"), 3e6);
    EXPECT_DOUBLE_EQ(parse_spice_number("-4p"), -4e-12);
    EXPECT_DOUBLE_EQ(parse_spice_number("1.2G"), 1.2e9);
    EXPECT_DOUBLE_EQ(parse_spice_number("7n"), 7e-9);
    EXPECT_DOUBLE_EQ(parse_spice_number("5m"), 5e-3);
    EXPECT_DOUBLE_EQ(parse_spice_number("2t"), 2e12);
}

TEST(SpiceNumber, RejectsGarbage) {
    EXPECT_THROW(parse_spice_number(""), ModelError);
    EXPECT_THROW(parse_spice_number("abc"), ModelError);
    EXPECT_THROW(parse_spice_number("1.5x"), ModelError);
}

TEST(NetlistParser, ResistorDividerDeck) {
    auto deck = parse_netlist_string(R"(
* simple divider
V1 in 0 DC 3.0
R1 in mid 1k
R2 mid gnd 2k
.end
)");
    const DcResult r = solve_dc(deck.circuit);
    EXPECT_NEAR(r.node_voltage(deck.circuit.node_id("mid")), 2.0, 1e-8);
}

TEST(NetlistParser, PwlSourceAndCapTransient) {
    auto deck = parse_netlist_string(R"(
V1 in 0 PWL (0 0 1n 0 1.2n 1.0)
R1 in out 1k
C1 out 0 1p
)");
    TranOptions opt;
    opt.tstop = 6e-9;
    opt.dt = 5e-12;
    const TranResult r = solve_tran(deck.circuit, opt);
    const double v_end =
        r.final_node_voltage(deck.circuit.node_id("out"));
    EXPECT_NEAR(v_end, 1.0 - std::exp(-4.8), 0.01);
}

TEST(NetlistParser, MosfetInverterDeck) {
    auto deck = parse_netlist_string(R"(
.model nch nmos vt0=0.33 n=1.3 kp=4.2e-4 lambda=0.18
.model pch pmos vt0=0.32 n=1.35 kp=1.8e-4 lambda=0.22
VDD vdd 0 DC 1.2
VIN in 0 DC 0.0
MN out in 0 0 nch w=0.52u l=0.13u
MP out in vdd vdd pch w=1.04u l=0.13u
)");
    DcResult r = solve_dc(deck.circuit);
    EXPECT_NEAR(r.node_voltage(deck.circuit.node_id("out")), 1.2, 0.03);
    deck.circuit.vsource("VIN").set_spec(SourceSpec::dc(1.2));
    r = solve_dc(deck.circuit, {}, &r.x);
    EXPECT_NEAR(r.node_voltage(deck.circuit.node_id("out")), 0.0, 0.03);
}

TEST(NetlistParser, CurrentSourceDeck) {
    auto deck = parse_netlist_string(R"(
I1 0 n DC 2m
R1 n 0 500
)");
    const DcResult r = solve_dc(deck.circuit);
    EXPECT_NEAR(r.node_voltage(deck.circuit.node_id("n")), 1.0, 1e-8);
}

TEST(NetlistParser, CommentsAndCaseInsensitivity) {
    auto deck = parse_netlist_string(R"(
* leading comment
v1 a 0 dc 1.0   ; trailing comment
r1 a 0 1K
)");
    EXPECT_NO_THROW(solve_dc(deck.circuit));
}

TEST(NetlistParser, ErrorsCarryLineNumbers) {
    try {
        parse_netlist_string("V1 in 0 DC 1.0\nR1 in 0\n");
        FAIL() << "expected throw";
    } catch (const ModelError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(NetlistParser, RejectsUnknownModelAndDirective) {
    EXPECT_THROW(
        parse_netlist_string("M1 d g s b missing w=1u l=0.1u\n"),
        ModelError);
    EXPECT_THROW(parse_netlist_string(".tran 1n 10n\n"), ModelError);
    EXPECT_THROW(parse_netlist_string("X1 a b sub\n"), ModelError);
    EXPECT_THROW(
        parse_netlist_string(".model m nmos bogus=1\n"), ModelError);
    EXPECT_THROW(
        parse_netlist_string(
            ".model nch nmos vt0=0.3\nM1 d g s b nch w=1u\n"),
        ModelError);
}

TEST(NetlistParser, StopsAtEndDirective) {
    auto deck = parse_netlist_string(R"(
V1 a 0 DC 1.0
R1 a 0 1k
.end
this line would be a syntax error if parsed
)");
    EXPECT_NO_THROW(solve_dc(deck.circuit));
}

}  // namespace
}  // namespace mcsm::spice
