// Integration tests reproducing the paper's Section 2.2 observations on the
// transistor-level substrate (Figs. 3-5): the NOR2 internal node voltage
// depends on input history, and that history changes the '11'->'00' rising
// delay, most strongly for light loads.
#include <gtest/gtest.h>

#include "engine/scenarios.h"
#include "tech/tech130.h"
#include "wave/metrics.h"

namespace mcsm::engine {
namespace {

class StackEffect : public ::testing::Test {
protected:
    StackEffect() : tech_(tech::make_tech130()), lib_(tech_) {}

    // Runs one history case and returns {V(N) just before the final edge,
    // 50% low-to-high delay of the final transition}.
    struct HistoryRun {
        double vn_before_edge;
        double delay;
        wave::Waveform out;
        wave::Waveform vn;
    };

    HistoryRun run_history(HistoryCase c, const LoadSpec& load) {
        const HistoryStimulus stim = nor2_history(c, tech_.vdd);
        GoldenCell bench(lib_, "NOR2", {{"A", stim.a}, {"B", stim.b}}, load);
        spice::TranOptions opt;
        opt.tstop = 3.2e-9;
        opt.dt = 1e-12;
        const spice::TranResult r = bench.run(opt);

        HistoryRun out;
        out.out = r.node_waveform(bench.out_node());
        out.vn = r.node_waveform(bench.node_of("N"));
        out.vn_before_edge = out.vn.at(stim.t_final - 10e-12);
        // Input falls, output rises; reference the A input.
        const auto d = wave::delay_50(stim.a, false, out.out, true, tech_.vdd,
                                      stim.t_final - 0.2e-9);
        out.delay = d.value_or(-1.0);
        return out;
    }

    tech::Technology tech_;
    cells::CellLibrary lib_;
};

TEST_F(StackEffect, Fig3InternalNodeHistoryStates) {
    const LoadSpec fo2{0.0, 2, "INV_X1"};
    const HistoryRun fast = run_history(HistoryCase::kFast10, fo2);
    const HistoryRun slow = run_history(HistoryCase::kSlow01, fo2);

    // Case 1 ('10'->'11'): N parked at Vdd, then boosted by delta-V1 through
    // the gate-drain cap of M4 when B rises.
    EXPECT_GT(fast.vn_before_edge, tech_.vdd - 0.05);
    // Case 2 ('01'->'11'): N near the body-affected |Vt,p| plus a small
    // delta-V2 kick through M3's Miller cap when A rises.
    EXPECT_GT(slow.vn_before_edge, 0.05);
    EXPECT_LT(slow.vn_before_edge, 0.75);
    // The two histories leave clearly different internal states.
    EXPECT_GT(fast.vn_before_edge - slow.vn_before_edge, 0.4);
}

TEST_F(StackEffect, Fig3ChargeInjectionBumpsVisible) {
    const LoadSpec fo2{0.0, 2, "INV_X1"};
    const HistoryRun fast = run_history(HistoryCase::kFast10, fo2);
    // After B rises at t_mid = 1ns, N floats and is kicked *above* Vdd
    // (paper: Vdd + delta-V1).
    const double vn_peak_after_mid = fast.vn.at(1.15e-9);
    EXPECT_GT(vn_peak_after_mid, tech_.vdd + 0.01);

    const HistoryRun slow = run_history(HistoryCase::kSlow01, fo2);
    // Before the mid edge, N sits near |Vt,p|; the A edge kicks it up.
    const double vn_before_mid = slow.vn.at(0.9e-9);
    const double vn_after_mid = slow.vn.at(1.15e-9);
    EXPECT_GT(vn_after_mid, vn_before_mid + 0.01);
}

TEST_F(StackEffect, Fig4FastCaseIsFaster) {
    const LoadSpec fo2{0.0, 2, "INV_X1"};
    const HistoryRun fast = run_history(HistoryCase::kFast10, fo2);
    const HistoryRun slow = run_history(HistoryCase::kSlow01, fo2);
    ASSERT_GT(fast.delay, 0.0);
    ASSERT_GT(slow.delay, 0.0);
    EXPECT_LT(fast.delay, slow.delay);
}

TEST_F(StackEffect, Fig5DelayDifferenceSignificantAndDecreasingWithLoad) {
    double diff_fo1 = 0.0;
    double diff_fo8 = 0.0;
    double prev_diff = 1e9;
    for (int fo = 1; fo <= 8; fo += 1) {
        const LoadSpec load{0.0, fo, "INV_X1"};
        const HistoryRun fast = run_history(HistoryCase::kFast10, load);
        const HistoryRun slow = run_history(HistoryCase::kSlow01, load);
        ASSERT_GT(fast.delay, 0.0) << "FO" << fo;
        ASSERT_GT(slow.delay, 0.0) << "FO" << fo;
        const double diff_pct =
            100.0 * (slow.delay - fast.delay) / slow.delay;
        if (fo == 1) diff_fo1 = diff_pct;
        if (fo == 8) diff_fo8 = diff_pct;
        // Broadly decreasing (allow small non-monotonic wiggle).
        EXPECT_LT(diff_pct, prev_diff + 3.0) << "FO" << fo;
        prev_diff = diff_pct;
    }
    // Paper Fig. 5: ~26% at FO1 falling to ~9% at FO8. Require the same
    // shape: significant at FO1, smaller at FO8.
    EXPECT_GT(diff_fo1, 8.0);
    EXPECT_LT(diff_fo1, 45.0);
    EXPECT_LT(diff_fo8, diff_fo1);
    EXPECT_GT(diff_fo1 - diff_fo8, 3.0);
}

TEST_F(StackEffect, GlitchStimulusProducesPartialSwing) {
    const GlitchStimulus stim = nor2_glitch(tech_.vdd);
    GoldenCell bench(lib_, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                     LoadSpec{0.0, 2, "INV_X1"});
    spice::TranOptions opt;
    opt.tstop = 3.0e-9;
    opt.dt = 1e-12;
    const spice::TranResult r = bench.run(opt);
    const wave::Waveform out = r.node_waveform(bench.out_node());
    // Output starts low, rises partway (glitch), and returns low.
    EXPECT_LT(out.at(1.0e-9), 0.1 * tech_.vdd);
    EXPECT_GT(out.max_value(), 0.25 * tech_.vdd);
    EXPECT_LT(out.at(3.0e-9), 0.35 * tech_.vdd);
}

}  // namespace
}  // namespace mcsm::engine
