// Parameterized property tests for the SPICE substrate: MOSFET model
// invariants swept across geometry/bias, and transient-integration accuracy
// swept across RC time constants and step sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "spice/tran_solver.h"
#include "tech/tech130.h"
#include "wave/edges.h"

namespace mcsm::spice {
namespace {

using tech::make_tech130;

// ---------------------------------------------------------------------------
// MOSFET invariants over (type, width multiplier, bulk bias).
// ---------------------------------------------------------------------------

class MosfetProperty
    : public ::testing::TestWithParam<std::tuple<MosType, double, double>> {
protected:
    MosfetProperty() : tech_(make_tech130()) {}

    Mosfet make_device() const {
        const auto [type, wmult, vb] = GetParam();
        (void)vb;
        const MosParams& p =
            type == MosType::kNmos ? tech_.nmos : tech_.pmos;
        const double w =
            (type == MosType::kNmos ? tech_.wn_unit : tech_.wp_unit) * wmult;
        return Mosfet("M", 1, 2, 3, 0, p, w, tech_.lmin);
    }

    // Polarity-normalized evaluation: returns the magnitude-oriented current
    // for "gate overdrive vg, drain vd, source vs" regardless of type.
    double norm_current(const Mosfet& m, double vd, double vg,
                        double vs) const {
        const auto [type, wmult, vb] = GetParam();
        (void)wmult;
        if (type == MosType::kNmos)
            return m.evaluate_current(vd, vg, vs, vb).ids;
        // Mirror all voltages around the supply for PMOS.
        const double s = tech_.vdd;
        return -m.evaluate_current(s - vd, s - vg, s - vs, s - vb).ids;
    }

    tech::Technology tech_;
};

TEST_P(MosfetProperty, ZeroVdsZeroCurrent) {
    const Mosfet m = make_device();
    for (double v = 0.0; v <= 1.2; v += 0.3)
        EXPECT_NEAR(norm_current(m, v, 1.2, v), 0.0, 1e-12);
}

TEST_P(MosfetProperty, AntisymmetricInDrainSourceSwap) {
    const Mosfet m = make_device();
    for (double vg = 0.2; vg <= 1.2; vg += 0.25) {
        const double fwd = norm_current(m, 0.9, vg, 0.1);
        const double rev = norm_current(m, 0.1, vg, 0.9);
        EXPECT_NEAR(fwd, -rev, std::fabs(fwd) * 1e-9 + 1e-15);
    }
}

TEST_P(MosfetProperty, CurrentScalesLinearlyWithWidth) {
    const auto [type, wmult, vb] = GetParam();
    (void)type;
    (void)vb;
    const Mosfet m = make_device();
    const double i = norm_current(m, 1.2, 1.2, 0.0);
    // Compare against the unit-width device: strictly proportional.
    const MosParams& p = m.params();
    const Mosfet unit("U", 1, 2, 3, 0, p, m.width() / wmult, m.length());
    const auto [t2, w2, vb2] = GetParam();
    (void)t2;
    (void)w2;
    (void)vb2;
    const double i_unit = norm_current(unit, 1.2, 1.2, 0.0);
    EXPECT_NEAR(i / i_unit, wmult, 1e-9 * wmult);
}

TEST_P(MosfetProperty, MonotoneInGateAndDrain) {
    const Mosfet m = make_device();
    double prev = -1e9;
    for (double vg = 0.0; vg <= 1.2; vg += 0.1) {
        const double i = norm_current(m, 1.0, vg, 0.0);
        EXPECT_GT(i, prev);
        prev = i;
    }
    prev = -1e9;
    for (double vd = 0.0; vd <= 1.2; vd += 0.1) {
        const double i = norm_current(m, vd, 1.0, 0.0);
        EXPECT_GE(i, prev - 1e-15);
        prev = i;
    }
}

TEST_P(MosfetProperty, SubthresholdSlopeIsExponential) {
    const Mosfet m = make_device();
    // Decades per 60-120 mV in weak inversion: check the ratio between two
    // points 100 mV apart is large but finite.
    const double i1 = norm_current(m, 1.0, 0.10, 0.0);
    const double i2 = norm_current(m, 1.0, 0.20, 0.0);
    EXPECT_GT(i2 / i1, 5.0);
    EXPECT_LT(i2 / i1, 200.0);
}

TEST_P(MosfetProperty, CapsPositiveEverywhere) {
    const Mosfet m = make_device();
    for (double vg = 0.0; vg <= 1.2; vg += 0.4) {
        for (double vd = 0.0; vd <= 1.2; vd += 0.4) {
            const MosCaps c = m.evaluate_caps(vd, vg, 0.0, 0.0);
            EXPECT_GT(c.cgs, 0.0);
            EXPECT_GT(c.cgd, 0.0);
            EXPECT_GE(c.cgb, 0.0);
            EXPECT_GT(c.cdb, 0.0);
            EXPECT_GT(c.csb, 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MosfetProperty,
    ::testing::Combine(::testing::Values(MosType::kNmos, MosType::kPmos),
                       ::testing::Values(1.0, 2.0, 4.0),
                       ::testing::Values(0.0)));

// ---------------------------------------------------------------------------
// Transient integration accuracy across RC constants and step sizes.
// ---------------------------------------------------------------------------

class RcAccuracy
    : public ::testing::TestWithParam<std::tuple<double, double, Integrator>> {
};

TEST_P(RcAccuracy, StepResponseMatchesAnalytic) {
    const auto [tau, dt, integrator] = GetParam();
    const double r = 1e3;
    const double c = tau / r;

    Circuit ckt;
    const int in = ckt.node("in");
    const int out = ckt.node("out");
    ckt.add_vsource("V1", in, Circuit::kGround,
                    SourceSpec::pwl(wave::saturated_ramp(0.05e-9, 1e-12, 0.0,
                                                         1.0)));
    ckt.add_resistor("R1", in, out, r);
    ckt.add_capacitor("C1", out, Circuit::kGround, c);

    TranOptions opt;
    opt.tstop = 5.0 * tau + 0.1e-9;
    opt.dt = dt;
    opt.integrator = integrator;
    const TranResult res = solve_tran(ckt, opt);
    const wave::Waveform v = res.node_waveform(out);

    const double t0 = 0.05e-9 + 1e-12;
    double worst = 0.0;
    for (double t = t0 + 0.5 * tau; t < t0 + 4.5 * tau; t += 0.25 * tau) {
        const double expected = 1.0 - std::exp(-(t - t0) / tau);
        worst = std::max(worst, std::fabs(v.at(t) - expected));
    }
    // Trapezoidal is 2nd order, BE 1st order; both must be well inside 2%
    // for dt <= tau/20.
    EXPECT_LT(worst, 0.02) << "tau=" << tau << " dt=" << dt;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RcAccuracy,
    ::testing::Combine(::testing::Values(0.2e-9, 1e-9, 5e-9),
                       ::testing::Values(2e-12, 10e-12),
                       ::testing::Values(Integrator::kTrapezoidal,
                                         Integrator::kBackwardEuler)));

// ---------------------------------------------------------------------------
// Inverter DC gain / transfer properties across drive strengths.
// ---------------------------------------------------------------------------

class InverterVtc : public ::testing::TestWithParam<double> {
protected:
    InverterVtc() : tech_(make_tech130()) {}
    tech::Technology tech_;
};

TEST_P(InverterVtc, FullSwingAndMonotone) {
    const double mult = GetParam();
    Circuit ckt;
    const int vdd = ckt.node("vdd");
    const int in = ckt.node("in");
    const int out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(tech_.vdd));
    ckt.add_vsource("VIN", in, Circuit::kGround, SourceSpec::dc(0.0));
    ckt.add_mosfet("MN", out, in, Circuit::kGround, Circuit::kGround,
                   tech_.nmos, mult * tech_.wn_unit, tech_.lmin);
    ckt.add_mosfet("MP", out, in, vdd, vdd, tech_.pmos, mult * tech_.wp_unit,
                   tech_.lmin);

    DcOptions opt;
    DcResult r = solve_dc(ckt, opt);
    EXPECT_GT(r.node_voltage(out), 0.98 * tech_.vdd);
    double prev = r.node_voltage(out) + 1e-9;
    double max_gain = 0.0;
    double v_prev_in = 0.0;
    for (double vin = 0.0; vin <= tech_.vdd + 1e-12; vin += 0.02) {
        ckt.vsource("VIN").set_spec(SourceSpec::dc(vin));
        r = solve_dc(ckt, opt, &r.x);
        const double vout = r.node_voltage(out);
        EXPECT_LE(vout, prev + 1e-7);
        if (vin > 0.0)
            max_gain = std::max(max_gain, (prev - vout) / (vin - v_prev_in));
        prev = vout;
        v_prev_in = vin;
    }
    EXPECT_LT(prev, 0.02 * tech_.vdd);
    // A static CMOS inverter has gain well above 1 at the switching point.
    EXPECT_GT(max_gain, 4.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, InverterVtc,
                         ::testing::Values(1.0, 2.0, 4.0));

}  // namespace
}  // namespace mcsm::spice
