// Validates the paper-faithful transient capacitance extraction (Section
// 3.3: ramp analyses, slope averaging, DC-current subtraction) against the
// model-linearization shortcut, and checks the paper's claim that the
// extracted capacitance is insensitive to the ramp slope.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/characterizer.h"
#include "engine/scenarios.h"
#include "core/model_scenarios.h"
#include "tech/tech130.h"
#include "wave/metrics.h"

namespace mcsm::core {
namespace {

class TransientChar : public ::testing::Test {
protected:
    TransientChar() : tech_(tech::make_tech130()), lib_(tech_) {}

    tech::Technology tech_;
    cells::CellLibrary lib_;
};

TEST_F(TransientChar, InvCapsAgreeWithModelLinearization) {
    const Characterizer chr(lib_);
    CharOptions tran_opt;
    tran_opt.grid_points = 9;
    tran_opt.transient_caps = true;
    CharOptions fast_opt = tran_opt;
    fast_opt.transient_caps = false;

    const CsmModel a = chr.characterize("INV_X1", ModelKind::kSis, {"A"},
                                        tran_opt);
    const CsmModel b = chr.characterize("INV_X1", ModelKind::kSis, {"A"},
                                        fast_opt);

    // Compare Cm and Co at interior biases: transient extraction sees the
    // same physics the linearization sums, within the slope-averaging and
    // region-blending tolerance.
    double worst_rel = 0.0;
    for (double vin = 0.0; vin <= 1.2; vin += 0.3) {
        for (double vo = 0.0; vo <= 1.2; vo += 0.3) {
            const std::array<double, 2> q{vin, vo};
            const double cm_t = a.cm(0, q);
            const double cm_s = b.cm(0, q);
            const double co_t = a.co(q);
            const double co_s = b.co(q);
            worst_rel = std::max(worst_rel,
                                 std::fabs(cm_t - cm_s) / std::max(cm_s, 1e-16));
            worst_rel = std::max(worst_rel,
                                 std::fabs(co_t - co_s) / std::max(co_s, 1e-16));
            // Same order of magnitude, always.
            EXPECT_LT(cm_t, 10.0 * cm_s + 1e-16);
            EXPECT_GT(cm_t, 0.05 * cm_s);
            EXPECT_LT(co_t, 10.0 * co_s + 1e-16);
            EXPECT_GT(co_t, 0.05 * co_s);
        }
    }
    // Agreement within 40% everywhere (Meyer linearization vs finite-ramp
    // extraction differ most in the blending regions).
    EXPECT_LT(worst_rel, 0.4);
}

TEST_F(TransientChar, ExtractedCapacitanceInsensitiveToSlope) {
    // The paper: "changing the slope of the ramp ... has a very small
    // effect on the pre-characterized capacitance values."
    const Characterizer chr(lib_);
    CharOptions o1;
    o1.grid_points = 7;
    o1.transient_caps = true;
    o1.cap_ramp = 120e-12;
    o1.cap_ramp2 = 120e-12;  // single slope
    CharOptions o2 = o1;
    o2.cap_ramp = 400e-12;
    o2.cap_ramp2 = 400e-12;  // single (much slower) slope

    const CsmModel fast_slope =
        chr.characterize("INV_X1", ModelKind::kSis, {"A"}, o1);
    const CsmModel slow_slope =
        chr.characterize("INV_X1", ModelKind::kSis, {"A"}, o2);

    for (double vin = 0.0; vin <= 1.2; vin += 0.4) {
        for (double vo = 0.0; vo <= 1.2; vo += 0.4) {
            const std::array<double, 2> q{vin, vo};
            EXPECT_NEAR(fast_slope.co(q), slow_slope.co(q),
                        0.25 * std::fabs(slow_slope.co(q)) + 0.2e-15)
                << "vin=" << vin << " vo=" << vo;
        }
    }
}

TEST_F(TransientChar, Nor2TransientModelIsAccurate) {
    // Full paper-faithful characterization on a reduced grid, then the
    // history experiment: MCSM must stay within a few percent of golden.
    const Characterizer chr(lib_);
    CharOptions opt;
    opt.grid_points = 6;  // keep the 4-D ramp sweep tractable in a test
    opt.transient_caps = true;
    opt.dt = 2e-12;
    const CsmModel nor =
        chr.characterize("NOR2", ModelKind::kMcsm, {"A", "B"}, opt);

    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;
    for (const auto hc :
         {engine::HistoryCase::kFast10, engine::HistoryCase::kSlow01}) {
        const engine::HistoryStimulus stim =
            engine::nor2_history(hc, tech_.vdd);
        engine::GoldenCell golden(lib_, "NOR2",
                                  {{"A", stim.a}, {"B", stim.b}},
                                  engine::LoadSpec{5e-15, 0, ""});
        const wave::Waveform gw =
            golden.run(topt).node_waveform(golden.out_node());
        ModelLoadSpec load;
        load.cap = 5e-15;
        ModelCell cell(nor, {{"A", stim.a}, {"B", stim.b}}, load);
        const wave::Waveform mw = cell.run(topt).node_waveform(cell.out_node());

        const auto dg = wave::delay_50(stim.a, false, gw, true, tech_.vdd,
                                       stim.t_final - 0.2e-9);
        const auto dm = wave::delay_50(stim.a, false, mw, true, tech_.vdd,
                                       stim.t_final - 0.2e-9);
        ASSERT_TRUE(dg.has_value());
        ASSERT_TRUE(dm.has_value());
        EXPECT_LT(std::fabs(*dm - *dg) / *dg, 0.08)
            << "case=" << static_cast<int>(hc);
        // Waveform shape agreement (paper's RMSE metric).
        const double nrmse = wave::rmse_normalized(
            gw, mw, stim.t_final - 0.1e-9, stim.t_final + 0.6e-9, tech_.vdd);
        EXPECT_LT(nrmse, 0.05);
    }
}

}  // namespace
}  // namespace mcsm::core
