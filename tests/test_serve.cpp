// Serving-layer tests: bit-exact binary/text store round trips (for every
// library cell), corrupt-input rejection (bad magic, bad checksums,
// truncations, malformed text -- always ModelError, never a partial model),
// repository caching semantics (lazy load, single-flight characterization,
// clean cache after failures), and deterministic batched timing queries
// across thread counts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cells/library.h"
#include "common/parallel.h"
#include "common/single_flight.h"
#include "core/characterizer.h"
#include "core/model_io.h"
#include "lut/table_io.h"
#include "serve/model_store.h"
#include "serve/repository.h"
#include "serve/timing_service.h"
#include "tech/tech130.h"

namespace mcsm::serve {
namespace {

namespace fs = std::filesystem;

core::CharOptions fast_options(std::size_t grid_points = 6) {
    core::CharOptions opt;
    opt.transient_caps = false;  // model-linearized caps: test-fast
    opt.grid_points = grid_points;
    opt.cin_points = 5;
    opt.threads = 1;
    return opt;
}

// Deterministic serialization makes byte equality a bit-exactness check
// over every field and table value.
std::string binary_bytes(const core::CsmModel& model) {
    std::stringstream ss;
    write_model_binary(ss, model);
    return ss.str();
}

std::string table_bytes(const lut::NdTable& table) {
    std::stringstream ss;
    write_table_binary(ss, table);
    return ss.str();
}

// Shared characterized models (expensive; characterize once per suite).
struct Shared {
    tech::Technology tech = tech::make_tech130();
    cells::CellLibrary lib{tech};
    core::CsmModel inv;
    core::CsmModel nor;

    static const Shared& get() {
        static Shared s;
        return s;
    }

private:
    Shared() {
        const core::Characterizer chr(lib);
        inv = chr.characterize("INV_X1", core::ModelKind::kSis, {"A"},
                               fast_options());
        nor = chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"},
                               fast_options());
    }
};

// Unique scratch directory per test, removed on scope exit.
struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("mcsm_serve_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
};

// --- binary store round trips -------------------------------------------

TEST(ModelStore, TableRoundTripIsBitExact) {
    // Values that decimal text formatting historically mangles: subnormals,
    // negative zero, huge/tiny magnitudes.
    lut::NdTable t({lut::Axis("x", {-0.12, 0.0, 0.6, 1.32}),
                    lut::Axis("y", {1e-18, 2.5e-15, 6.4e-13})},
                   "quirks");
    const std::vector<double> vals{
        5e-324, -5e-324, -0.0,   0.0,       1e308,      -1e308,
        1e-300, 3.14,    -2e-9,  7.77e-16,  0.1,        -0.3,
    };
    std::size_t i = 0;
    t.for_each_grid_point([&](std::span<const std::size_t>,
                              std::span<const double>, double& slot) {
        slot = vals[i++ % vals.size()];
    });

    std::stringstream ss(table_bytes(t));
    const lut::NdTable back = read_table_binary(ss);
    EXPECT_EQ(back.name(), "quirks");
    EXPECT_EQ(table_bytes(back), table_bytes(t));
}

TEST(ModelStore, ModelRoundTripEveryLibraryCell) {
    const Shared& s = Shared::get();
    const core::Characterizer chr(s.lib);
    for (const std::string& name : s.lib.names()) {
        const cells::CellType& cell = s.lib.get(name);
        std::vector<std::string> pins{cell.inputs().front().name};
        core::ModelKind kind = core::ModelKind::kSis;
        if (cell.input_count() >= 2) {
            pins.push_back(cell.inputs()[1].name);
            kind = core::ModelKind::kMcsm;
        }
        // 5-D models (two internals) get a smaller grid to stay test-fast.
        const core::CsmModel model = chr.characterize(
            name, kind, pins,
            fast_options(cell.internal_nodes().size() >= 2 ? 5u : 6u));

        std::stringstream ss(binary_bytes(model));
        const core::CsmModel back = read_model_binary(ss);
        EXPECT_EQ(binary_bytes(back), binary_bytes(model))
            << "binary round trip not bit-exact for " << name;
    }
}

TEST(ModelStore, SaveLoadFileRoundTrip) {
    const Shared& s = Shared::get();
    TempDir dir("file_roundtrip");
    const std::string path = dir.str() + "/nor" + kBinaryModelExt;
    save_model_binary(path, s.nor);
    const core::CsmModel back = load_model_binary(path);
    EXPECT_EQ(binary_bytes(back), binary_bytes(s.nor));
    // Atomic write: only the published file, no temp left behind.
    std::size_t entries = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path))
        ++entries;
    EXPECT_EQ(entries, 1u);
}

// --- text store round-trip fidelity (hexfloat regression) ----------------

TEST(ModelIoText, RoundTripIsBitExact) {
    const Shared& s = Shared::get();
    for (const core::CsmModel* m : {&s.inv, &s.nor}) {
        std::stringstream ss;
        core::write_model(ss, *m);
        const core::CsmModel back = core::read_model(ss);
        EXPECT_EQ(binary_bytes(back), binary_bytes(*m));
    }
}

TEST(ModelIoText, TableRoundTripPreservesQuirkValues) {
    lut::NdTable t({lut::Axis("x", {0.0, 1.0})}, "q");
    std::vector<std::size_t> i0{0};
    std::vector<std::size_t> i1{1};
    t.set_grid_value(i0, 5e-324);  // subnormal: lost by %.17g-era formats
    t.set_grid_value(i1, -0.0);
    std::stringstream ss;
    lut::write_table(ss, t);
    const lut::NdTable back = lut::read_table(ss);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.values()[0]),
              std::bit_cast<std::uint64_t>(t.values()[0]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.values()[1]),
              std::bit_cast<std::uint64_t>(t.values()[1]));
}

TEST(ModelIoText, LegacyDecimalTablesStillParse) {
    std::stringstream ss(
        "table legacy 1\n"
        "axis x 3 0 0.5 1e0\n"
        "values 3\n"
        "0.25 -3e-15 17\n"
        "end\n");
    const lut::NdTable t = lut::read_table(ss);
    EXPECT_EQ(t.values()[0], 0.25);
    EXPECT_EQ(t.values()[1], -3e-15);
    EXPECT_EQ(t.values()[2], 17.0);
}

// --- corrupt / malformed inputs ------------------------------------------

TEST(ModelStoreValidation, RejectsBadMagic) {
    std::string bytes = binary_bytes(Shared::get().nor);
    bytes[0] = 'X';
    std::stringstream ss(bytes);
    EXPECT_THROW(read_model_binary(ss), ModelError);
}

TEST(ModelStoreValidation, RejectsBadVersion) {
    std::string bytes = binary_bytes(Shared::get().nor);
    bytes[8] = static_cast<char>(bytes[8] + 1);  // version field
    std::stringstream ss(bytes);
    EXPECT_THROW(read_model_binary(ss), ModelError);
}

TEST(ModelStoreValidation, RejectsKindMismatch) {
    // A model envelope is not a table envelope and vice versa.
    std::stringstream model_ss(binary_bytes(Shared::get().nor));
    EXPECT_THROW(read_table_binary(model_ss), ModelError);
    std::stringstream table_ss(table_bytes(Shared::get().nor.i_out));
    EXPECT_THROW(read_model_binary(table_ss), ModelError);
}

TEST(ModelStoreValidation, RejectsTruncationAtAnyDepth) {
    const std::string bytes = binary_bytes(Shared::get().nor);
    for (const double frac : {0.001, 0.1, 0.5, 0.9, 0.9999}) {
        const std::size_t cut =
            static_cast<std::size_t>(frac * static_cast<double>(bytes.size()));
        std::stringstream ss(bytes.substr(0, cut));
        EXPECT_THROW(read_model_binary(ss), ModelError) << "cut=" << cut;
    }
}

TEST(ModelStoreValidation, RejectsPayloadBitFlips) {
    const std::string bytes = binary_bytes(Shared::get().nor);
    // Flip one bit at several payload offsets; the checksum must catch all.
    for (const double frac : {0.2, 0.5, 0.95}) {
        std::string corrupt = bytes;
        const std::size_t at =
            32 + static_cast<std::size_t>(
                     frac * static_cast<double>(bytes.size() - 64));
        corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
        std::stringstream ss(corrupt);
        EXPECT_THROW(read_model_binary(ss), ModelError) << "at=" << at;
    }
}

// --- new-in-v2 payloads: corner metadata and arc surfaces ---------------

ArcSurfaceData sample_surface() {
    ArcSurfaceData s;
    s.arc_id = "NOR2|A-B|F";
    s.dt = 4e-12;
    s.settle = 1.5e-9;
    s.model_check = 0x5eedf00dULL;
    std::vector<lut::Axis> axes{lut::Axis("slew", {50e-12, 150e-12}),
                                lut::Axis("load", {2e-15, 8e-15})};
    s.delay = lut::NdTable(axes, s.arc_id + ".delay");
    s.slew = lut::NdTable(axes, s.arc_id + ".slew");
    double v = 11e-12;
    s.delay.for_each_grid_point([&](std::span<const std::size_t>,
                                    std::span<const double>, double& slot) {
        slot = (v += 3e-12);
    });
    s.slew.for_each_grid_point([&](std::span<const std::size_t>,
                                   std::span<const double>, double& slot) {
        slot = (v += 5e-12);
    });
    return s;
}

std::string surface_bytes(const ArcSurfaceData& s) {
    std::stringstream ss;
    write_surface_binary(ss, s);
    return ss.str();
}

TEST(ModelStore, SurfaceRoundTripIsBitExact) {
    const ArcSurfaceData s = sample_surface();
    std::stringstream ss(surface_bytes(s));
    const ArcSurfaceData back = read_surface_binary(ss);
    EXPECT_EQ(back.arc_id, s.arc_id);
    EXPECT_EQ(back.dt, s.dt);
    EXPECT_EQ(back.settle, s.settle);
    EXPECT_EQ(back.model_check, s.model_check);
    EXPECT_EQ(surface_bytes(back), surface_bytes(s));
}

TEST(ModelStore, ModelCarriesCharacterizationTemperature) {
    core::CsmModel m = Shared::get().inv;
    m.temp_c = 85.0;
    std::stringstream ss(binary_bytes(m));
    EXPECT_EQ(read_model_binary(ss).temp_c, 85.0);
    // The text path carries it too.
    std::stringstream text;
    core::write_model(text, m);
    EXPECT_EQ(core::read_model(text).temp_c, 85.0);
}

namespace {
std::uint64_t test_fnv1a(const std::string& bytes) {
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

void poke_u32(std::string& bytes, std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        bytes[at + static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xff);
}

void poke_u64(std::string& bytes, std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        bytes[at + static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xff);
}
}  // namespace

TEST(ModelStoreValidation, LegacyV1ModelPayloadStillLoads) {
    // Reconstruct a pre-corner (version 1) file by byte surgery on the v2
    // bytes: drop the temp_c double that sits after dv_margin, mark the
    // envelope as version 1 and re-checksum. Reading it must default the
    // temperature to the nominal 25 degC -- which makes the reloaded model
    // re-serialize bitwise identical to the v2 original.
    const core::CsmModel& nor = Shared::get().nor;
    ASSERT_EQ(nor.temp_c, 25.0);
    const std::string v2 = binary_bytes(nor);

    const std::size_t name_len = nor.cell_name.size();
    const std::size_t temp_at = 32 + 4 + 4 + name_len + 8 + 8;
    std::string payload = v2.substr(32);
    payload.erase(temp_at - 32, 8);

    std::string v1 = v2.substr(0, 32) + payload;
    poke_u32(v1, 8, 1);  // version
    poke_u64(v1, 16, payload.size());
    poke_u64(v1, 24, test_fnv1a(payload));

    std::stringstream ss(v1);
    const core::CsmModel back = read_model_binary(ss);
    EXPECT_EQ(back.temp_c, 25.0);
    EXPECT_EQ(binary_bytes(back), v2);
}

TEST(ModelStoreValidation, SurfaceInV1EnvelopeRejected) {
    // Surfaces were introduced with format version 2; a v1 envelope
    // declaring one is corrupt by definition.
    std::string bytes = surface_bytes(sample_surface());
    poke_u32(bytes, 8, 1);
    std::stringstream ss(bytes);
    EXPECT_THROW(read_surface_binary(ss), ModelError);
}

TEST(ModelStoreValidation, SurfaceAndModelKindsDoNotCrossLoad) {
    std::stringstream model_ss(binary_bytes(Shared::get().nor));
    EXPECT_THROW(read_surface_binary(model_ss), ModelError);
    std::stringstream surf_ss(surface_bytes(sample_surface()));
    EXPECT_THROW(read_model_binary(surf_ss), ModelError);
}

// Fuzz-style robustness over the v2 payload kinds: seeded random
// truncations and single-bit flips over freshly written files must always
// throw ModelError before any object exists -- never crash, never yield a
// partial surface/model.
TEST(ModelStoreValidation, FuzzedTruncationsAndBitFlipsAlwaysThrow) {
    const std::string surface = surface_bytes(sample_surface());
    const std::string model = binary_bytes(Shared::get().inv);
    std::mt19937 gen(0xC0FFEEu);

    const auto read_any = [](const std::string& bytes, bool is_surface) {
        std::stringstream ss(bytes);
        if (is_surface)
            (void)read_surface_binary(ss);
        else
            (void)read_model_binary(ss);
    };

    for (const bool is_surface : {true, false}) {
        const std::string& bytes = is_surface ? surface : model;
        for (int i = 0; i < 60; ++i) {
            const std::size_t cut = std::uniform_int_distribution<
                std::size_t>(0, bytes.size() - 1)(gen);
            EXPECT_THROW(read_any(bytes.substr(0, cut), is_surface),
                         ModelError)
                << (is_surface ? "surface" : "model") << " cut=" << cut;
        }
        for (int i = 0; i < 80; ++i) {
            std::string corrupt = bytes;
            const std::size_t at = std::uniform_int_distribution<
                std::size_t>(0, bytes.size() - 1)(gen);
            const int bit = std::uniform_int_distribution<int>(0, 7)(gen);
            corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << bit));
            EXPECT_THROW(read_any(corrupt, is_surface), ModelError)
                << (is_surface ? "surface" : "model") << " at=" << at
                << " bit=" << bit;
        }
    }
}

TEST(ModelStoreValidation, MalformedTextTablesThrow) {
    for (const char* text : {
             "garbage",
             "table t 1\naxis x 2 0 zz\nvalues 2\n0 1\nend\n",  // bad knot
             "table t 1\naxis x 2 0 1\nvalues 5\n0 1\nend\n",   // bad count
             "table t 1\naxis x 2 0 1\nvalues 2\n0 nope\nend\n",
             "table t 1\naxis x 2 0 1\nvalues 2\n0 1\n",  // missing end
         }) {
        std::stringstream ss(text);
        EXPECT_THROW(lut::read_table(ss), ModelError) << text;
    }
}

// --- single-flight cache ---------------------------------------------------

TEST(SingleFlight, FailureIsNotCachedAndRetries) {
    SingleFlightCache<int> cache;
    EXPECT_THROW(cache.get_or_produce(
                     "k",
                     []() -> std::shared_ptr<const int> {
                         throw ModelError("production failed");
                     }),
                 ModelError);
    EXPECT_FALSE(cache.ready("k"));
    const auto v = cache.get_or_produce(
        "k", [] { return std::make_shared<const int>(7); });
    EXPECT_EQ(*v, 7);
    EXPECT_TRUE(cache.ready("k"));
}

TEST(SingleFlight, FailedProducerDoesNotEvictConcurrentPut) {
    // A put() that lands while a production for the same key is failing
    // must survive the producer's eviction (the producer may only remove
    // its own in-flight entry).
    SingleFlightCache<int> cache;
    const auto put_value = std::make_shared<const int>(42);
    EXPECT_THROW(cache.get_or_produce(
                     "k",
                     [&]() -> std::shared_ptr<const int> {
                         cache.put("k", put_value);
                         throw ModelError("production failed");
                     }),
                 ModelError);
    EXPECT_TRUE(cache.ready("k"));
    const auto got = cache.get_or_produce(
        "k", []() -> std::shared_ptr<const int> {
            ADD_FAILURE() << "producer ran despite cached value";
            return nullptr;
        });
    EXPECT_EQ(got.get(), put_value.get());
}

// --- repository -----------------------------------------------------------

TEST(Repository, CorruptFileFailsAndCacheStaysClean) {
    const Shared& s = Shared::get();
    TempDir dir("corrupt");
    const ModelKey key = ModelKey::arc("NOR2", {"A", "B"});

    RepositoryOptions opt;
    opt.dir = dir.str();
    ModelRepository repo(nullptr, opt);
    {
        std::ofstream os(repo.binary_path(key), std::ios::binary);
        os << "MCSMBIN1 but not really";
    }
    EXPECT_THROW(repo.get(key), ModelError);
    EXPECT_EQ(repo.cached_count(), 0u);  // no partial model cached

    // Replacing the corrupt file heals the key without restarting.
    save_model_binary(repo.binary_path(key), s.nor);
    const auto model = repo.get(key);
    EXPECT_EQ(binary_bytes(*model), binary_bytes(s.nor));
    EXPECT_TRUE(repo.cached(key));
}

TEST(Repository, FullMissWithoutLibraryThrows) {
    ModelRepository repo(nullptr, RepositoryOptions{});
    EXPECT_THROW(repo.get(ModelKey::arc("NOR2", {"A", "B"})), ModelError);
    EXPECT_EQ(repo.cached_count(), 0u);
}

TEST(Repository, SingleFlightCharacterizesOnceUnderConcurrency) {
    const Shared& s = Shared::get();
    RepositoryOptions opt;
    opt.char_options = fast_options();
    ModelRepository repo(&s.lib, opt);

    const ModelKey key = ModelKey::arc("INV_X1", {"A"});
    std::vector<std::shared_ptr<const core::CsmModel>> seen(6);
    parallel_workers(seen.size(),
                     [&](std::size_t w) { seen[w] = repo.get(key); });
    EXPECT_EQ(repo.characterize_count(), 1u);
    for (const auto& m : seen) EXPECT_EQ(m.get(), seen.front().get());
}

TEST(Repository, WriteBackThenColdLoadIsBitExact) {
    const Shared& s = Shared::get();
    TempDir dir("writeback");
    const ModelKey key = ModelKey::arc("NOR2", {"A", "B"});

    RepositoryOptions opt;
    opt.dir = dir.str();
    {
        ModelRepository warm(&s.lib, opt);
        warm.put(key, s.nor);
        EXPECT_TRUE(fs::exists(warm.binary_path(key)));
    }
    ModelRepository cold(nullptr, opt);  // no library: disk only
    EXPECT_EQ(binary_bytes(*cold.get(key)), binary_bytes(s.nor));
    EXPECT_EQ(cold.characterize_count(), 0u);
}

TEST(Repository, MigratesLegacyTextStoreToBinary) {
    const Shared& s = Shared::get();
    TempDir dir("migrate");
    const ModelKey key = ModelKey::arc("NOR2", {"A", "B"});

    RepositoryOptions opt;
    opt.dir = dir.str();
    core::save_model(dir.str() + "/" + key.to_string() + kTextModelExt,
                     s.nor);

    ModelRepository repo(nullptr, opt);
    EXPECT_EQ(binary_bytes(*repo.get(key)), binary_bytes(s.nor));
    EXPECT_TRUE(fs::exists(repo.binary_path(key)));  // migrated on load
}

// --- repository corner keying ---------------------------------------------

TEST(Repository, CornerModelsCharacterizeCacheAndReloadDistinctly) {
    const Shared& s = Shared::get();
    TempDir dir("corners");
    RepositoryOptions opt;
    opt.dir = dir.str();
    opt.char_options = fast_options();

    const Corner hot{1.0, 100.0};
    const ModelKey nominal = ModelKey::arc("INV_X1", {"A"});
    const ModelKey corner = ModelKey::arc("INV_X1", {"A"}, hot);
    ASSERT_NE(nominal.to_string(), corner.to_string());
    EXPECT_EQ(corner.to_string(), "INV_X1.SIS.A@1V100C");

    std::string nom_bytes;
    std::string hot_bytes;
    {
        ModelRepository warm(&s.lib, opt);
        const auto nom = warm.get(nominal);
        const auto hot_model = warm.get(corner);
        EXPECT_EQ(warm.characterize_count(), 2u);  // no cross-corner hit
        EXPECT_TRUE(warm.cached(nominal));
        EXPECT_TRUE(warm.cached(corner));

        // The corner model really is a different model, characterized on a
        // derated card: supply and temperature both differ.
        EXPECT_EQ(nom->vdd, s.tech.vdd);
        EXPECT_EQ(nom->temp_c, 25.0);
        EXPECT_EQ(hot_model->vdd, 1.0);
        EXPECT_EQ(hot_model->temp_c, 100.0);
        nom_bytes = binary_bytes(*nom);
        hot_bytes = binary_bytes(*hot_model);
        EXPECT_NE(nom_bytes, hot_bytes);
        EXPECT_TRUE(fs::exists(warm.binary_path(nominal)));
        EXPECT_TRUE(fs::exists(warm.binary_path(corner)));
    }

    // Cold restart from the binary store, no library attached: both corner
    // variants reload bit-exactly from their own files, without
    // characterization and without cross-corner cache hits.
    ModelRepository cold(nullptr, opt);
    EXPECT_EQ(binary_bytes(*cold.get(corner)), hot_bytes);
    EXPECT_TRUE(cold.cached(corner));
    EXPECT_FALSE(cold.cached(nominal));
    EXPECT_EQ(binary_bytes(*cold.get(nominal)), nom_bytes);
    EXPECT_EQ(cold.characterize_count(), 0u);
}

// --- timing service --------------------------------------------------------

ServeOptions test_serve_options() {
    ServeOptions opt;
    opt.slew_knots = {50e-12, 150e-12};
    // Normalized edge offsets: +-1.25 mean-slews around simultaneity.
    opt.skew_knots = {-1.25, 0.0, 1.25};
    opt.load_knots = {2e-15, 8e-15};
    opt.dt = 4e-12;
    opt.settle = 1.5e-9;
    return opt;
}

// Repository pre-seeded with the shared models; no disk, no characterizer.
std::unique_ptr<ModelRepository> seeded_repo() {
    const Shared& s = Shared::get();
    auto repo =
        std::make_unique<ModelRepository>(nullptr, RepositoryOptions{});
    repo->put(ModelKey::arc("INV_X1", {"A"}), s.inv);
    repo->put(ModelKey::arc("NOR2", {"A", "B"}), s.nor);
    return repo;
}

TEST(TimingService, LutPathMatchesTransientAtSurfaceKnots) {
    auto repo = seeded_repo();
    TimingService service(*repo, test_serve_options());

    TimingQuery q;
    q.cell = "NOR2";
    q.pins = {"A", "B"};
    q.inputs_rise = false;  // both fall -> output rises through the stack
    q.slews = {50e-12, 150e-12};
    // The skew axis holds normalized 50%-crossing offsets: delta = skew_b
    // + (slew_b - slew_a)/2 = 125 ps over a 100 ps mean slew, i.e. the
    // u = +1.25 surface knot.
    q.skews = {0.0, 75e-12};
    q.load_cap = 8e-15;

    const TimingResult lut = service.run_one(q);
    ASSERT_TRUE(lut.valid) << lut.error;
    EXPECT_EQ(lut.path, ResultPath::kLut);

    TimingQuery exact = q;
    exact.exact = true;
    const TimingResult ref = service.run_one(exact);
    ASSERT_TRUE(ref.valid) << ref.error;
    EXPECT_EQ(ref.path, ResultPath::kTransient);

    // At a surface knot the LUT holds the value measured from the identical
    // deterministic transient. The delay differs from the exact path only
    // by the rounding of the pin-0 -> latest-edge reference conversion
    // (sub-attosecond); the slew is bitwise identical.
    EXPECT_NEAR(lut.delay, ref.delay, 1e-22);
    EXPECT_EQ(lut.slew, ref.slew);
}

TEST(TimingService, LutPathInterpolatesOffKnotWithinTolerance) {
    auto repo = seeded_repo();
    TimingService service(*repo, test_serve_options());

    TimingQuery q;
    q.cell = "NOR2";
    q.pins = {"A", "B"};
    q.slews = {80e-12, 120e-12};  // off every surface knot
    q.skews = {0.0, 40e-12};
    q.load_cap = 5e-15;

    const TimingResult lut = service.run_one(q);
    TimingQuery exact = q;
    exact.exact = true;
    const TimingResult ref = service.run_one(exact);
    ASSERT_TRUE(lut.valid && ref.valid) << lut.error << ref.error;
    EXPECT_NEAR(lut.delay, ref.delay, 0.25 * std::abs(ref.delay) + 5e-12);
    EXPECT_NEAR(lut.slew, ref.slew, 0.25 * ref.slew + 5e-12);
}

TEST(TimingService, SkewIsAFirstClassQueryAxis) {
    auto repo = seeded_repo();
    TimingService service(*repo, test_serve_options());

    // Sweeping the B skew through the MIS valley must change the answer;
    // a characterization-time-only treatment would return a flat curve.
    std::vector<TimingQuery> batch;
    for (const double skew : {-100e-12, 0.0, 100e-12}) {
        TimingQuery q;
        q.cell = "NOR2";
        q.pins = {"A", "B"};
        q.slews = {80e-12, 80e-12};
        q.skews = {0.0, skew};
        q.load_cap = 4e-15;
        batch.push_back(q);
    }
    const std::vector<TimingResult> r = service.run_batch(batch);
    ASSERT_TRUE(r[0].valid && r[1].valid && r[2].valid);
    // Absolute-skew invariance: shifting both edges together is a no-op
    // (up to the ulp the skew subtraction itself introduces).
    TimingQuery shifted = batch[2];
    shifted.skews = {60e-12, 160e-12};
    const TimingResult rs = service.run_one(shifted);
    EXPECT_NEAR(rs.delay, r[2].delay, 1e-20);
    // The simultaneous point must differ from the widely skewed points.
    EXPECT_NE(r[1].delay, r[0].delay);
    EXPECT_NE(r[1].delay, r[2].delay);
}

TEST(TimingService, BatchIsDeterministicAcrossThreadCounts) {
    auto repo = seeded_repo();

    // A mixed batch: both cells, both paths, off-grid skews, one failing
    // query (unknown cell) that must not poison the rest.
    std::vector<TimingQuery> batch;
    for (int i = 0; i < 24; ++i) {
        TimingQuery q;
        if (i % 3 == 0) {
            q.cell = "INV_X1";
            q.pins = {"A"};
            q.slews = {(40 + 13.0 * (i % 7)) * 1e-12};
        } else {
            q.cell = "NOR2";
            q.pins = {"A", "B"};
            q.slews = {(50 + 10.0 * (i % 5)) * 1e-12,
                       (60 + 9.0 * (i % 6)) * 1e-12};
            q.skews = {0.0, (i % 5 - 2) * 35e-12};
        }
        q.inputs_rise = (i % 2) == 1;
        q.load_cap = (2 + (i % 4) * 2) * 1e-15;
        q.exact = (i % 8) == 5;
        batch.push_back(q);
    }
    TimingQuery bad;
    bad.cell = "NO_SUCH_CELL";
    bad.pins = {"A"};
    bad.slews = {50e-12};
    batch.push_back(bad);

    ServeOptions opt1 = test_serve_options();
    opt1.threads = 1;
    ServeOptions optN = test_serve_options();
    optN.threads = 4;
    TimingService serial(*repo, opt1);
    TimingService parallel(*repo, optN);

    const std::vector<TimingResult> a = serial.run_batch(batch);
    const std::vector<TimingResult> b = parallel.run_batch(batch);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].valid, b[i].valid) << i;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].delay),
                  std::bit_cast<std::uint64_t>(b[i].delay))
            << i;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].slew),
                  std::bit_cast<std::uint64_t>(b[i].slew))
            << i;
    }
    EXPECT_FALSE(a.back().valid);
    EXPECT_FALSE(a.back().error.empty());
    for (std::size_t i = 0; i + 1 < a.size(); ++i)
        EXPECT_TRUE(a[i].valid) << i << ": " << a[i].error;
    // One surface per (cell, pins, direction) arc in the batch.
    EXPECT_EQ(serial.surface_count(), parallel.surface_count());
}

TEST(TimingService, WaveformQueriesReturnTheOutputWave) {
    auto repo = seeded_repo();
    TimingService service(*repo, test_serve_options());

    TimingQuery q;
    q.cell = "INV_X1";
    q.pins = {"A"};
    q.inputs_rise = true;
    q.slews = {100e-12};
    q.load_cap = 4e-15;
    q.want_waveform = true;

    const TimingResult r = service.run_one(q);
    ASSERT_TRUE(r.valid) << r.error;
    EXPECT_EQ(r.path, ResultPath::kTransient);
    ASSERT_GT(r.waveform.size(), 10u);
    const double vdd = Shared::get().inv.vdd;
    EXPECT_NEAR(r.waveform.first_value(), vdd, 0.05 * vdd);
    EXPECT_LT(r.waveform.last_value(), 0.1 * vdd);
}

// Persisted surfaces are a derived cache of (options, model): a second
// service reloads them bit-for-bit, but a changed source model must force
// a rebuild -- a surface of a stale model is never served.
TEST(TimingService, PersistedSurfacesInvalidateWhenModelChanges) {
    const Shared& s = Shared::get();
    TempDir dir("surf_stale");
    ServeOptions opt = test_serve_options();
    opt.surface_dir = dir.str();

    TimingQuery q;
    q.cell = "INV_X1";
    q.pins = {"A"};
    q.slews = {80e-12};
    q.load_cap = 4e-15;

    auto repo = seeded_repo();
    double fresh_delay = 0.0;
    {
        TimingService first(*repo, opt);
        const TimingResult r = first.run_one(q);
        ASSERT_TRUE(r.valid) << r.error;
        fresh_delay = r.delay;
        EXPECT_EQ(first.surface_load_count(), 0u);  // cold build
    }
    {
        TimingService second(*repo, opt);
        const TimingResult r = second.run_one(q);
        ASSERT_TRUE(r.valid) << r.error;
        EXPECT_EQ(r.delay, fresh_delay);  // bit-exact reload
        EXPECT_EQ(second.surface_load_count(), 1u);
    }

    // Same key, different model content (as after a re-characterization
    // with other options): the persisted surface must be rebuilt.
    core::CsmModel tweaked = s.inv;
    const std::vector<std::size_t> origin(tweaked.i_out.rank(), 0);
    tweaked.i_out.set_grid_value(origin,
                                 tweaked.i_out.grid_value(origin) + 1e-6);
    auto repo2 =
        std::make_unique<ModelRepository>(nullptr, RepositoryOptions{});
    repo2->put(ModelKey::arc("INV_X1", {"A"}), tweaked);
    TimingService third(*repo2, opt);
    const TimingResult r = third.run_one(q);
    ASSERT_TRUE(r.valid) << r.error;
    EXPECT_EQ(third.surface_load_count(), 0u)
        << "stale surface served for a changed model";
}

// Every malformed query must come back as valid=false with a descriptive
// error -- never a crash, never silent garbage -- and must not poison the
// healthy queries sharing its batch.
TEST(TimingService, MalformedQueriesYieldDescriptiveErrors) {
    auto repo = seeded_repo();
    TimingService service(*repo, test_serve_options());

    const auto base = [] {
        TimingQuery q;
        q.cell = "INV_X1";
        q.pins = {"A"};
        q.slews = {80e-12};
        q.load_cap = 4e-15;
        return q;
    };

    struct Case {
        const char* name;
        std::function<void(TimingQuery&)> mutate;
    };
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<Case> cases{
        {"empty cell", [](TimingQuery& q) { q.cell.clear(); }},
        {"no pins", [](TimingQuery& q) { q.pins.clear(); }},
        {"four pins",
         [](TimingQuery& q) {
             q.pins = {"A", "B", "C", "D"};
             q.slews.assign(4, 80e-12);
         }},
        {"duplicate pins",
         [](TimingQuery& q) {
             q.pins = {"A", "A"};
             q.slews = {80e-12, 80e-12};
         }},
        {"empty pin name", [](TimingQuery& q) { q.pins = {""}; }},
        {"missing slew", [](TimingQuery& q) { q.slews.clear(); }},
        {"extra slew",
         [](TimingQuery& q) { q.slews = {80e-12, 90e-12}; }},
        {"negative slew", [](TimingQuery& q) { q.slews = {-1e-12}; }},
        {"zero slew", [](TimingQuery& q) { q.slews = {0.0}; }},
        {"NaN slew", [&](TimingQuery& q) { q.slews = {nan}; }},
        {"infinite slew", [&](TimingQuery& q) { q.slews = {inf}; }},
        {"skew count mismatch",
         [](TimingQuery& q) { q.skews = {0.0, 10e-12}; }},
        {"NaN skew", [&](TimingQuery& q) { q.skews = {nan}; }},
        {"negative load", [](TimingQuery& q) { q.load_cap = -1e-15; }},
        {"NaN load", [&](TimingQuery& q) { q.load_cap = nan; }},
        {"negative wire resistance",
         [](TimingQuery& q) { q.r_wire = -100.0; }},
        {"negative far cap",
         [](TimingQuery& q) {
             q.r_wire = 100.0;
             q.c_far = -1e-15;
         }},
        {"pi caps without wire",
         [](TimingQuery& q) { q.c_far = 4e-15; }},
        {"corner vdd out of range",
         [](TimingQuery& q) { q.corner.vdd = 0.05; }},
        {"corner temperature out of range",
         [](TimingQuery& q) { q.corner.temp_c = 400.0; }},
        {"unknown cell", [](TimingQuery& q) { q.cell = "NO_SUCH_CELL"; }},
        {"unknown pin", [](TimingQuery& q) { q.pins = {"Z"}; }},
    };

    // One batch: every malformed case plus a healthy query at each end.
    std::vector<TimingQuery> batch;
    batch.push_back(base());
    for (const Case& c : cases) {
        TimingQuery q = base();
        c.mutate(q);
        batch.push_back(q);
    }
    batch.push_back(base());

    const std::vector<TimingResult> results = service.run_batch(batch);
    EXPECT_TRUE(results.front().valid) << results.front().error;
    EXPECT_TRUE(results.back().valid) << results.back().error;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const TimingResult& r = results[i + 1];
        EXPECT_FALSE(r.valid) << cases[i].name;
        EXPECT_FALSE(r.error.empty()) << cases[i].name;
        EXPECT_EQ(r.delay, 0.0) << cases[i].name << ": no garbage numbers";
    }
}

// A misconfigured service must refuse to construct instead of serving
// garbage later.
TEST(TimingService, RejectsMalformedServeOptions) {
    auto repo = seeded_repo();
    const auto expect_throws = [&](const char* name,
                                   const std::function<void(ServeOptions&)>&
                                       mutate) {
        ServeOptions opt = test_serve_options();
        mutate(opt);
        EXPECT_THROW(TimingService(*repo, opt), ModelError) << name;
    };
    expect_throws("empty slew knots",
                  [](ServeOptions& o) { o.slew_knots.clear(); });
    expect_throws("single-knot axis",
                  [](ServeOptions& o) { o.slew_knots = {80e-12}; });
    expect_throws("non-monotone slew knots", [](ServeOptions& o) {
        o.slew_knots = {80e-12, 50e-12};
    });
    expect_throws("duplicate load knots", [](ServeOptions& o) {
        o.load_knots = {4e-15, 4e-15};
    });
    expect_throws("negative slew knot", [](ServeOptions& o) {
        o.slew_knots = {-20e-12, 80e-12};
    });
    expect_throws("skew knots not bracketing 0", [](ServeOptions& o) {
        o.skew_knots = {0.5, 1.0, 1.5};
    });
    expect_throws("3-pin skew knots not bracketing 0", [](ServeOptions& o) {
        o.skew_knots_mis3 = {-2.0, -1.0, -0.5};
    });
    expect_throws("seconds-valued skew knots (pre-normalized schema)",
                  [](ServeOptions& o) {
                      o.skew_knots = {-100e-12, 0.0, 100e-12};
                  });
    expect_throws("NaN knot", [](ServeOptions& o) {
        o.load_knots = {2e-15, std::numeric_limits<double>::quiet_NaN()};
    });
    expect_throws("zero dt", [](ServeOptions& o) { o.dt = 0.0; });
    expect_throws("negative settle",
                  [](ServeOptions& o) { o.settle = -1e-9; });
}

}  // namespace
}  // namespace mcsm::serve
