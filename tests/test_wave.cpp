// Unit tests for the waveform module: interpolation, builders, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "wave/edges.h"
#include "wave/metrics.h"
#include "wave/waveform.h"

namespace mcsm::wave {
namespace {

TEST(Waveform, InterpolatesLinearlyAndClamps) {
    Waveform w({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
    EXPECT_DOUBLE_EQ(w.at(-5.0), 0.0);
    EXPECT_DOUBLE_EQ(w.at(0.5), 0.5);
    EXPECT_DOUBLE_EQ(w.at(1.0), 1.0);
    EXPECT_DOUBLE_EQ(w.at(1.25), 0.75);
    EXPECT_DOUBLE_EQ(w.at(10.0), 0.0);
}

TEST(Waveform, SlopeInsideAndOutside) {
    Waveform w({0.0, 2.0}, {0.0, 4.0});
    EXPECT_DOUBLE_EQ(w.slope_at(1.0), 2.0);
    EXPECT_DOUBLE_EQ(w.slope_at(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(w.slope_at(3.0), 0.0);
}

TEST(Waveform, RejectsNonIncreasingTimes) {
    EXPECT_THROW(Waveform({0.0, 0.0}, {1.0, 2.0}), ModelError);
    Waveform w({0.0}, {1.0});
    EXPECT_THROW(w.append(0.0, 2.0), ModelError);
}

TEST(Waveform, CrossTimeRisingAndFalling) {
    Waveform w({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
    auto up = w.cross_time(0.5, true);
    ASSERT_TRUE(up.has_value());
    EXPECT_DOUBLE_EQ(*up, 0.5);
    auto down = w.cross_time(0.5, false);
    ASSERT_TRUE(down.has_value());
    EXPECT_DOUBLE_EQ(*down, 1.5);
    EXPECT_FALSE(w.cross_time(2.0, true).has_value());
}

TEST(Waveform, CrossTimeRespectsSearchStart) {
    Waveform w({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, 0.0, 1.0, 0.0});
    auto second = w.cross_time(0.5, true, 1.2);
    ASSERT_TRUE(second.has_value());
    EXPECT_DOUBLE_EQ(*second, 2.5);
    auto last = w.last_cross_time(0.5, true);
    ASSERT_TRUE(last.has_value());
    EXPECT_DOUBLE_EQ(*last, 2.5);
}

TEST(Waveform, ShiftScaleResample) {
    Waveform w({0.0, 1.0}, {0.0, 2.0});
    const Waveform s = w.shifted(10.0);
    EXPECT_DOUBLE_EQ(s.first_time(), 10.0);
    const Waveform g = w.scaled(0.5, 1.0);
    EXPECT_DOUBLE_EQ(g.at(1.0), 2.0);
    const Waveform r = w.resampled({0.0, 0.25, 0.5, 1.0});
    EXPECT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r.value(1), 0.5);
}

TEST(Edges, SaturatedRampShape) {
    const Waveform w = saturated_ramp(1e-9, 100e-12, 0.0, 1.2);
    EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
    EXPECT_DOUBLE_EQ(w.at(1e-9 + 50e-12), 0.6);
    EXPECT_DOUBLE_EQ(w.at(2e-9), 1.2);
}

TEST(Edges, PiecewiseHistorySequence) {
    // The paper's first history: inputs '10' -> '11' -> '00' on pin B means
    // B: 0 -> 1 -> 0.
    const Waveform b = piecewise_edges(
        0.0, {{1e-9, 80e-12, 1.2}, {2e-9, 80e-12, 0.0}});
    EXPECT_DOUBLE_EQ(b.at(0.5e-9), 0.0);
    EXPECT_DOUBLE_EQ(b.at(1.5e-9), 1.2);
    EXPECT_DOUBLE_EQ(b.at(3e-9), 0.0);
}

TEST(Edges, OverlappingEdgesRejected) {
    EXPECT_THROW(piecewise_edges(0.0, {{1e-9, 200e-12, 1.2},
                                       {1.1e-9, 100e-12, 0.0}}),
                 ModelError);
}

TEST(Edges, PulseRisesAndFalls) {
    const Waveform p = pulse(1e-9, 500e-12, 50e-12, 0.0, 1.2);
    EXPECT_DOUBLE_EQ(p.at(0.9e-9), 0.0);
    EXPECT_DOUBLE_EQ(p.at(1.2e-9), 1.2);
    EXPECT_DOUBLE_EQ(p.at(2e-9), 0.0);
}

TEST(Metrics, Delay50BetweenRamps) {
    const Waveform in = saturated_ramp(1e-9, 100e-12, 0.0, 1.2);
    const Waveform out = saturated_ramp(1.2e-9, 200e-12, 1.2, 0.0);
    const auto d = delay_50(in, true, out, false, 1.2);
    ASSERT_TRUE(d.has_value());
    // Input 50% at 1.05ns, output 50% at 1.3ns.
    EXPECT_NEAR(*d, 0.25e-9, 1e-15);
}

TEST(Metrics, Slew1090OfRamp) {
    const Waveform w = saturated_ramp(0.0, 100e-12, 0.0, 1.2);
    const auto s = slew_10_90(w, 1.2, true);
    ASSERT_TRUE(s.has_value());
    EXPECT_NEAR(*s, 80e-12, 1e-15);

    const Waveform f = saturated_ramp(0.0, 100e-12, 1.2, 0.0);
    const auto sf = slew_10_90(f, 1.2, false);
    ASSERT_TRUE(sf.has_value());
    EXPECT_NEAR(*sf, 80e-12, 1e-15);
}

TEST(Metrics, RmseZeroForIdenticalAndPositiveOtherwise) {
    const Waveform a = saturated_ramp(0.0, 1.0, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(rmse(a, a, 0.0, 1.0), 0.0);
    const Waveform b = a.scaled(1.0, 0.1);
    EXPECT_NEAR(rmse(a, b, 0.0, 1.0), 0.1, 1e-12);
    EXPECT_NEAR(rmse_normalized(a, b, 0.0, 1.0, 1.2), 0.1 / 1.2, 1e-12);
}

TEST(Metrics, MaxAbsError) {
    const Waveform a = Waveform::constant(0.0);
    const Waveform b({0.0, 1.0, 2.0}, {0.0, 0.5, 0.0});
    EXPECT_NEAR(max_abs_error(a, b, 0.0, 2.0, 1001), 0.5, 1e-3);
}

}  // namespace
}  // namespace mcsm::wave
