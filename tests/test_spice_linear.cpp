// Tests for the MNA solver on linear circuits with analytic solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "spice/tran_solver.h"
#include "wave/edges.h"

namespace mcsm::spice {
namespace {

TEST(Dc, ResistorDivider) {
    Circuit c;
    const int in = c.node("in");
    const int mid = c.node("mid");
    c.add_vsource("V1", in, Circuit::kGround, SourceSpec::dc(3.0));
    c.add_resistor("R1", in, mid, 1e3);
    c.add_resistor("R2", mid, Circuit::kGround, 2e3);
    const DcResult r = solve_dc(c);
    EXPECT_NEAR(r.node_voltage(mid), 2.0, 1e-8);
}

TEST(Dc, VsourceBranchCurrentSign) {
    // 1V across 1k: 1mA flows from the + terminal through the resistor.
    Circuit c;
    const int in = c.node("in");
    c.add_vsource("V1", in, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("R1", in, Circuit::kGround, 1e3);
    const DcResult r = solve_dc(c);
    // Branch current = current out of the + node into the source; the source
    // delivers +1mA into the node, so the branch current is -1mA.
    const double i_branch = r.x[static_cast<std::size_t>(c.node_count())];
    EXPECT_NEAR(i_branch, -1e-3, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
    Circuit c;
    const int n1 = c.node("n1");
    // 2mA flows from ground through the source into n1.
    c.add_isource("I1", Circuit::kGround, n1, SourceSpec::dc(2e-3));
    c.add_resistor("R1", n1, Circuit::kGround, 500.0);
    const DcResult r = solve_dc(c);
    EXPECT_NEAR(r.node_voltage(n1), 1.0, 1e-9);
}

TEST(Dc, FloatingNodeHeldByGmin) {
    Circuit c;
    const int a = c.node("a");
    const int b = c.node("b");
    c.add_vsource("V1", a, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_capacitor("C1", a, b, 1e-15);  // open in DC
    const DcResult r = solve_dc(c);
    // b floats; gmin ties it to ground.
    EXPECT_NEAR(r.node_voltage(b), 0.0, 1e-6);
}

TEST(Tran, RcChargeMatchesAnalytic) {
    // Step 1V into R=1k, C=1pF: tau = 1ns.
    Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    c.add_vsource("V1", in, Circuit::kGround,
                  SourceSpec::pwl(wave::saturated_ramp(0.1e-9, 1e-12, 0.0, 1.0)));
    c.add_resistor("R1", in, out, 1e3);
    c.add_capacitor("C1", out, Circuit::kGround, 1e-12);

    TranOptions opt;
    opt.tstop = 6e-9;
    opt.dt = 5e-12;
    const TranResult r = solve_tran(c, opt);
    const wave::Waveform v = r.node_waveform(out);

    const double t0 = 0.1e-9 + 1e-12;  // after the (fast) input edge
    for (double t = 0.3e-9; t < 5.5e-9; t += 0.5e-9) {
        const double expected = 1.0 - std::exp(-(t - t0) / 1e-9);
        EXPECT_NEAR(v.at(t), expected, 5e-3) << "t=" << t;
    }
}

TEST(Tran, RcChargeBackwardEulerAlsoConverges) {
    Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    c.add_vsource("V1", in, Circuit::kGround,
                  SourceSpec::pwl(wave::saturated_ramp(0.1e-9, 1e-12, 0.0, 1.0)));
    c.add_resistor("R1", in, out, 1e3);
    c.add_capacitor("C1", out, Circuit::kGround, 1e-12);

    TranOptions opt;
    opt.tstop = 4e-9;
    opt.dt = 2e-12;
    opt.integrator = Integrator::kBackwardEuler;
    const TranResult r = solve_tran(c, opt);
    const double v_end = r.final_node_voltage(out);
    EXPECT_NEAR(v_end, 1.0 - std::exp(-3.899), 1e-2);
}

TEST(Tran, CapacitiveDividerCouplesEdge) {
    // A fast edge couples through C1 into a floating node loaded by C2:
    // dV(out) = dV(in) * C1/(C1+C2).
    Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    c.add_vsource("V1", in, Circuit::kGround,
                  SourceSpec::pwl(wave::saturated_ramp(1e-9, 0.1e-9, 0.0, 1.0)));
    c.add_capacitor("C1", in, out, 1e-15);
    c.add_capacitor("C2", out, Circuit::kGround, 3e-15);
    TranOptions opt;
    opt.tstop = 2e-9;
    opt.dt = 1e-12;
    const TranResult r = solve_tran(c, opt);
    EXPECT_NEAR(r.final_node_voltage(out), 0.25, 1e-3);
}

TEST(Tran, VsourceCurrentThroughCapacitor) {
    // Ramp of slope 1 V/ns across 1pF draws i = C dV/dt = 1 mA.
    Circuit c;
    const int in = c.node("in");
    c.add_vsource("V1", in, Circuit::kGround,
                  SourceSpec::pwl(wave::saturated_ramp(1e-9, 1e-9, 0.0, 1.0)));
    c.add_capacitor("C1", in, Circuit::kGround, 1e-12);
    TranOptions opt;
    opt.tstop = 3e-9;
    opt.dt = 1e-12;
    const TranResult r = solve_tran(c, opt);
    const wave::Waveform i = r.vsource_current("V1");
    // Mid-ramp the source supplies 1mA into the cap: branch current is -1mA
    // (positive branch current = out of + terminal into the source).
    EXPECT_NEAR(i.at(1.5e-9), -1e-3, 2e-5);
    // Before and long after the edge, no current flows.
    EXPECT_NEAR(i.at(0.5e-9), 0.0, 1e-6);
    EXPECT_NEAR(i.at(2.9e-9), 0.0, 1e-6);
}

TEST(Tran, RecordsUniformGrid) {
    Circuit c;
    const int in = c.node("in");
    c.add_vsource("V1", in, Circuit::kGround, SourceSpec::dc(1.0));
    c.add_resistor("R1", in, Circuit::kGround, 1e3);
    TranOptions opt;
    opt.tstop = 1e-9;
    opt.dt = 0.1e-9;
    const TranResult r = solve_tran(c, opt);
    ASSERT_EQ(r.sample_count(), 11u);
    EXPECT_DOUBLE_EQ(r.times().front(), 0.0);
    EXPECT_NEAR(r.times().back(), 1e-9, 1e-18);
}

}  // namespace
}  // namespace mcsm::spice
