// Batch-first device evaluation tests:
//  * the fast softplus/logistic pair agrees with the libm reference to
//    tight tolerance over the whole argument range,
//  * batched SoA EKV evaluation with the reference kernel reproduces the
//    scalar Mosfet::evaluate_current bit-for-bit (ulp-scale) over
//    randomized operating points in every region,
//  * the fast kernel stays within a physically negligible tolerance of the
//    scalar reference on the same points,
//  * solve_dc_sweep (blocked multi-RHS quasi-Newton) matches per-point
//    solve_dc on a fully forced characterization fixture and on a generic
//    circuit with free nodes,
//  * shortcut characterization is bitwise deterministic across thread
//    counts.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "cells/library.h"
#include "common/numeric.h"
#include "common/numeric_tables.h"
#include "common/simd.h"
#include "core/characterizer.h"
#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "spice/device_batch.h"
#include "spice/ekv_lanes.h"
#include "spice/solver_workspace.h"
#include "tech/tech130.h"

namespace mcsm {
namespace {

using spice::Circuit;
using spice::MosCurrent;
using spice::Mosfet;
using spice::SourceSpec;

// Distance in representable doubles (same-sign finite inputs; equal bits
// return 0). Used for the "ulp-scale" SoA-vs-scalar assertion.
std::int64_t ulp_diff(double a, double b) {
    if (a == b) return 0;
    auto ordered = [](double x) {
        const auto bits = std::bit_cast<std::int64_t>(x);
        return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits
                        : bits;
    };
    const std::int64_t da = ordered(a);
    const std::int64_t db = ordered(b);
    return da > db ? da - db : db - da;
}

TEST(FastEkv, SoftplusLogisticPairMatchesReference) {
    std::mt19937 rng(20260728);
    std::uniform_real_distribution<double> wide(-80.0, 80.0);
    std::uniform_real_distribution<double> core(-12.0, 12.0);
    std::uniform_real_distribution<double> seam(7.9, 8.1);

    auto check = [](double x) {
        const SpSig f = softplus_logistic_fast(x);
        const SpSig r = softplus_logistic_ref(x);
        if (r.sp < 1e-300) {
            // Deep-underflow tail (the fast path clamps its exponential
            // argument at 708 to stay in the normal range): both values
            // are zero for any physical purpose.
            EXPECT_LT(f.sp, 1e-290) << "x=" << x;
            EXPECT_LT(f.sig, 1e-290) << "x=" << x;
            return;
        }
        EXPECT_NEAR(f.sp, r.sp, 5e-11 * std::fabs(r.sp)) << "x=" << x;
        EXPECT_NEAR(f.sig, r.sig, 5e-12 * std::max(r.sig, 1e-300))
            << "x=" << x;
    };

    for (int i = 0; i < 4000; ++i) check(wide(rng));
    for (int i = 0; i < 4000; ++i) check(core(rng));
    // The piecewise seams and the reference's own switch points.
    for (int i = 0; i < 500; ++i) {
        const double s = seam(rng);
        check(s);
        check(-s);
    }
    for (double x : {-745.0, -300.0, -30.0, -8.0, 0.0, 8.0, 30.0, 700.0})
        check(x);
}

// A circuit holding NMOS and PMOS devices of varied geometry between the
// first few nodes, prepared so the workspace exposes its MosfetBatch.
struct BatchBench {
    Circuit circuit;
    tech::Technology tech = tech::make_tech130();
    std::vector<const Mosfet*> mosfets;
    int n_nodes = 0;

    BatchBench() {
        const int vdd = circuit.node("vdd");
        circuit.add_vsource("VDD", vdd, Circuit::kGround,
                            SourceSpec::dc(tech.vdd));
        // Built with += to dodge GCC 12 -Wrestrict false positives on
        // `const char* + std::string&&` (see test_sta_scale.cpp).
        for (int k = 0; k < 6; ++k) {
            std::string n = "n";
            n += std::to_string(k);
            circuit.node(n);
        }
        std::mt19937 rng(7);
        std::uniform_int_distribution<int> pick(0, 6);
        std::uniform_real_distribution<double> wmul(0.5, 4.0);
        for (int k = 0; k < 24; ++k) {
            const bool nmos = k % 2 == 0;
            const auto& p = nmos ? tech.nmos : tech.pmos;
            const double w = (nmos ? tech.wn_unit : tech.wp_unit) * wmul(rng);
            std::string name = "M";
            name += std::to_string(k);
            circuit.add_mosfet(name, pick(rng), pick(rng), pick(rng),
                               nmos ? Circuit::kGround : vdd, p, w, tech.lmin);
        }
        circuit.prepare();
        for (const auto& dev : circuit.devices())
            if (const auto* m = dynamic_cast<const Mosfet*>(dev.get()))
                mosfets.push_back(m);
        n_nodes = circuit.node_count();
    }

    // Random node voltages spanning every device region: below-ground and
    // above-rail margins included (the characterizer sweeps there).
    std::vector<double> random_x(std::mt19937& rng) const {
        std::uniform_real_distribution<double> v(-0.4, tech.vdd + 0.4);
        std::vector<double> x(static_cast<std::size_t>(n_nodes) +
                                  static_cast<std::size_t>(
                                      circuit.branch_total()),
                              0.0);
        for (int n = 1; n < n_nodes; ++n)
            x[static_cast<std::size_t>(n)] = v(rng);
        return x;
    }
};

TEST(MosfetBatch, SoAReferenceKernelMatchesScalarAtUlpScale) {
    BatchBench bench;
    const spice::MosfetBatch& batch =
        bench.circuit.workspace().mosfet_batch();
    ASSERT_EQ(batch.size(), bench.mosfets.size());

    std::mt19937 rng(20260728);
    std::vector<MosCurrent> out(batch.size());
    for (int trial = 0; trial < 200; ++trial) {
        const std::vector<double> x = bench.random_x(rng);
        batch.evaluate(x, out.data(), /*fast=*/false);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Mosfet& m = *bench.mosfets[i];
            const MosCurrent ref = m.evaluate_current(
                x[static_cast<std::size_t>(m.drain())],
                x[static_cast<std::size_t>(m.gate())],
                x[static_cast<std::size_t>(m.source())],
                x[static_cast<std::size_t>(m.bulk())]);
            EXPECT_LE(ulp_diff(out[i].ids, ref.ids), 2) << "device " << i;
            EXPECT_LE(ulp_diff(out[i].gm, ref.gm), 2) << "device " << i;
            EXPECT_LE(ulp_diff(out[i].gds, ref.gds), 2) << "device " << i;
            EXPECT_LE(ulp_diff(out[i].gms, ref.gms), 2) << "device " << i;
            EXPECT_LE(ulp_diff(out[i].gmb, ref.gmb), 2) << "device " << i;
        }
    }
}

TEST(MosfetBatch, FastKernelTightToScalarInAllRegions) {
    BatchBench bench;
    const spice::MosfetBatch& batch =
        bench.circuit.workspace().mosfet_batch();
    std::mt19937 rng(42);
    std::vector<MosCurrent> out(batch.size());

    // Every current/conductance within 1e-9 relative with an attoamp-scale
    // absolute floor: far below device tolerances, Newton vtol, and every
    // golden-waveform gate.
    auto expect_close = [](double got, double want, const char* what,
                     std::size_t i) {
        EXPECT_NEAR(got, want, 1e-9 * std::fabs(want) + 1e-18)
            << what << " device " << i;
    };
    auto check_x = [&](const std::vector<double>& x) {
        batch.evaluate(x, out.data(), /*fast=*/true);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Mosfet& m = *bench.mosfets[i];
            const MosCurrent ref = m.evaluate_current(
                x[static_cast<std::size_t>(m.drain())],
                x[static_cast<std::size_t>(m.gate())],
                x[static_cast<std::size_t>(m.source())],
                x[static_cast<std::size_t>(m.bulk())]);
            expect_close(out[i].ids, ref.ids, "ids", i);
            expect_close(out[i].gm, ref.gm, "gm", i);
            expect_close(out[i].gds, ref.gds, "gds", i);
            expect_close(out[i].gms, ref.gms, "gms", i);
            expect_close(out[i].gmb, ref.gmb, "gmb", i);
        }
    };

    // Randomized points (subthreshold, linear, saturation, reversed d/s and
    // the sweep margins all occur across 24 devices x shared nodes).
    for (int trial = 0; trial < 200; ++trial) check_x(bench.random_x(rng));
    // Deterministic corners: rails and mid-rail.
    for (double va : {0.0, 0.6, 1.2}) {
        for (double vb : {0.0, 0.05, 1.2}) {
            std::vector<double> x(static_cast<std::size_t>(bench.n_nodes) +
                                      static_cast<std::size_t>(
                                          bench.circuit.branch_total()),
                                  0.0);
            for (int n = 1; n < bench.n_nodes; ++n)
                x[static_cast<std::size_t>(n)] = (n % 2 != 0) ? va : vb;
            check_x(x);
        }
    }
}

// NOR2 characterization-style fixture: every node forced, so the blocked
// sweep's shared-factorization rounds are exact.
TEST(DcSweep, BlockedMatchesPerPointOnForcedFixture) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    auto build = [&]() {
        Circuit c;
        const int vdd = c.node("vdd");
        const int a = c.node("a");
        const int b = c.node("b");
        const int out = c.node("out");
        c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(t.vdd));
        c.add_vsource("VA", a, Circuit::kGround, SourceSpec::dc(0.0));
        c.add_vsource("VB", b, Circuit::kGround, SourceSpec::dc(0.0));
        c.add_vsource("VOUT", out, Circuit::kGround, SourceSpec::dc(0.0));
        const cells::CellType& nor = lib.get("NOR2");
        std::unordered_map<std::string, int> conn{{cells::kVdd, vdd},
                                                  {cells::kGnd, 0},
                                                  {"A", a},
                                                  {"B", b},
                                                  {cells::kOut, out}};
        // Force the internal stack node too (as the MCSM fixture does): a
        // floating stack node's DC value is only pinned to within leakage
        // indeterminacy, which is no basis for a voltage comparison.
        for (const std::string& formal : nor.internal_nodes()) {
            const int n = c.node("int_" + formal);
            conn[formal] = n;
            c.add_vsource("VN_" + formal, n, Circuit::kGround,
                          SourceSpec::dc(0.6));
        }
        nor.instantiate(c, "DUT", conn);
        return c;
    };

    // Grid of (va, vb, vout) including the characterization margins.
    std::vector<double> grid{-0.2, 0.0, 0.3, 0.6, 0.9, 1.2, 1.4};
    std::vector<double> values;
    for (double va : grid)
        for (double vb : grid)
            for (double vout : grid) {
                values.push_back(va);
                values.push_back(vb);
                values.push_back(vout);
            }
    const std::size_t n_points = values.size() / 3;

    // Per-point reference.
    Circuit ref = build();
    ref.prepare();
    std::vector<std::vector<double>> want;
    spice::DcResult dc;
    for (std::size_t p = 0; p < n_points; ++p) {
        ref.vsource("VA").set_spec(SourceSpec::dc(values[p * 3 + 0]));
        ref.vsource("VB").set_spec(SourceSpec::dc(values[p * 3 + 1]));
        ref.vsource("VOUT").set_spec(SourceSpec::dc(values[p * 3 + 2]));
        dc = spice::solve_dc(ref, {}, dc.x.empty() ? nullptr : &dc.x);
        want.push_back(dc.x);
    }

    Circuit blk = build();
    blk.prepare();
    std::vector<spice::VSource*> swept{&blk.vsource("VA"),
                                       &blk.vsource("VB"),
                                       &blk.vsource("VOUT")};
    std::size_t seen = 0;
    spice::solve_dc_sweep(
        blk, swept, values, n_points, {}, nullptr,
        [&](std::size_t p, const std::vector<double>& x) {
            ASSERT_EQ(p, seen++);
            ASSERT_EQ(x.size(), want[p].size());
            for (std::size_t i = 0; i < x.size(); ++i)
                EXPECT_NEAR(x[i], want[p][i],
                            1e-6 * std::max(1.0, std::fabs(want[p][i])))
                    << "point " << p << " unknown " << i;
        });
    EXPECT_EQ(seen, n_points);
}

// Generic circuit with free nodes: the shared-matrix rounds are a
// quasi-Newton iteration here; converged points must still land on the
// true solution, and stragglers must fall back cleanly.
TEST(DcSweep, BlockedMatchesPerPointWithFreeNodes) {
    const tech::Technology t = tech::make_tech130();
    auto build = [&]() {
        Circuit c;
        const int vdd = c.node("vdd");
        const int in = c.node("in");
        const int out = c.node("out");  // free node
        const int mid = c.node("mid");  // free node
        c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(t.vdd));
        c.add_vsource("VIN", in, Circuit::kGround, SourceSpec::dc(0.0));
        c.add_mosfet("MN", out, in, Circuit::kGround, Circuit::kGround,
                     t.nmos, t.wn_unit, t.lmin);
        c.add_mosfet("MP", out, in, vdd, vdd, t.pmos, t.wp_unit, t.lmin);
        c.add_resistor("RL", out, mid, 5e3);
        c.add_resistor("RG", mid, Circuit::kGround, 50e3);
        return c;
    };

    std::vector<double> values;
    for (double v = -0.1; v <= 1.31; v += 0.05) values.push_back(v);
    const std::size_t n_points = values.size();

    Circuit ref = build();
    ref.prepare();
    std::vector<std::vector<double>> want;
    spice::DcResult dc;
    for (std::size_t p = 0; p < n_points; ++p) {
        ref.vsource("VIN").set_spec(SourceSpec::dc(values[p]));
        dc = spice::solve_dc(ref, {}, dc.x.empty() ? nullptr : &dc.x);
        want.push_back(dc.x);
    }

    Circuit blk = build();
    blk.prepare();
    std::vector<spice::VSource*> swept{&blk.vsource("VIN")};
    spice::DcSweepOptions sopt;
    sopt.block = 8;
    std::size_t seen = 0;
    spice::solve_dc_sweep(
        blk, swept, values, n_points, sopt, nullptr,
        [&](std::size_t p, const std::vector<double>& x) {
            ++seen;
            for (std::size_t i = 0; i < x.size(); ++i)
                EXPECT_NEAR(x[i], want[p][i],
                            1e-6 * std::max(1.0, std::fabs(want[p][i])))
                    << "point " << p << " unknown " << i;
        });
    EXPECT_EQ(seen, n_points);
}

TEST(Characterizer, ShortcutSweepBitwiseAcrossThreadCounts) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    const core::Characterizer chr(lib);

    core::CharOptions opt;
    opt.grid_points = 5;
    opt.transient_caps = false;
    opt.threads = 1;
    const core::CsmModel serial =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);
    opt.threads = 3;
    const core::CsmModel parallel =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);

    auto same = [](const lut::NdTable& a, const lut::NdTable& b) {
        ASSERT_EQ(a.value_count(), b.value_count());
        for (std::size_t i = 0; i < a.value_count(); ++i)
            EXPECT_EQ(a.values()[i], b.values()[i]) << a.name() << "[" << i
                                                    << "]";
    };
    same(serial.i_out, parallel.i_out);
    same(serial.c_out, parallel.c_out);
    ASSERT_EQ(serial.i_internal.size(), parallel.i_internal.size());
    for (std::size_t j = 0; j < serial.i_internal.size(); ++j)
        same(serial.i_internal[j], parallel.i_internal[j]);
    ASSERT_EQ(serial.c_miller.size(), parallel.c_miller.size());
    for (std::size_t p = 0; p < serial.c_miller.size(); ++p)
        same(serial.c_miller[p], parallel.c_miller[p]);
    ASSERT_EQ(serial.c_in.size(), parallel.c_in.size());
    for (std::size_t p = 0; p < serial.c_in.size(); ++p)
        same(serial.c_in[p], parallel.c_in[p]);
}

// ---- SIMD lane tier -----------------------------------------------------

// The fast-kernel reduction tables are compile-time literals; assert they
// are the exact libm doubles, so a platform whose libm disagreed would fail
// loudly here instead of drifting quietly.
TEST(NumericTables, ConstexprTablesMatchLibmBitwise) {
    for (int j = 0; j < 32; ++j)
        EXPECT_EQ(numeric_tables::kExp2Neg32[j],
                  std::exp2(-static_cast<double>(j) / 32.0))
            << "kExp2Neg32[" << j << "]";
    for (int j = 0; j < 64; ++j) {
        const double m0 = 1.0 + static_cast<double>(j) / 64.0;
        EXPECT_EQ(numeric_tables::kInvM0_64[j], 1.0 / m0)
            << "kInvM0_64[" << j << "]";
        EXPECT_EQ(numeric_tables::kLogM0_64[j], std::log(m0))
            << "kLogM0_64[" << j << "]";
    }
    EXPECT_EQ(numeric_tables::kLn2, std::log(2.0));
}

// Widths this build AND this CPU can actually run (1 always works).
std::vector<int> runnable_widths() {
    std::vector<int> ws{1};
    if (simd::cpu_caps().avx2_fma && simd::width_compiled(4)) ws.push_back(4);
    if (simd::cpu_caps().avx512 && simd::width_compiled(8)) ws.push_back(8);
    return ws;
}

// Pins the lane-kernel width for a scope; restores auto dispatch on exit.
struct ForcedWidth {
    explicit ForcedWidth(int w) { spice::ekv_lane_force_width(w); }
    ~ForcedWidth() { spice::ekv_lane_force_width(0); }
};

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(SimdDispatch, PickWidthPolicy) {
    const simd::Caps none;  // CPU without AVX2/FMA: must fall back cleanly
    EXPECT_EQ(simd::pick_width(none, nullptr, nullptr), 1);
    EXPECT_EQ(simd::pick_width(none, nullptr, "8"), 1);

    simd::Caps avx2;
    avx2.avx2_fma = true;
    simd::Caps avx512 = avx2;
    avx512.avx512 = true;

    EXPECT_TRUE(simd::width_compiled(1));
    EXPECT_FALSE(simd::width_compiled(5));

    if (!simd::compiled_in()) {
        // MCSM_SIMD=OFF (or no fast kernel / non-x86 build): the tier is
        // compiled out and every dispatch resolves to the scalar kernel.
        EXPECT_EQ(simd::pick_width(avx512, nullptr, nullptr), 1);
        EXPECT_FALSE(simd::width_compiled(4));
        EXPECT_FALSE(simd::width_compiled(8));
        EXPECT_EQ(spice::ekv_lane_width(), 1);
        return;
    }

    const int w4 = simd::width_compiled(4) ? 4 : 1;
    const int w8 = simd::width_compiled(8) ? 8 : w4;
    EXPECT_EQ(simd::pick_width(avx2, nullptr, nullptr), w4);
    // Auto dispatch takes the widest compiled width the CPU supports.
    EXPECT_EQ(simd::pick_width(avx512, nullptr, nullptr), w8);
    // An explicit width request clamps down to CPU/build support.
    EXPECT_EQ(simd::pick_width(avx512, nullptr, "8"), w8);
    EXPECT_EQ(simd::pick_width(avx2, nullptr, "8"), w4);
    EXPECT_EQ(simd::pick_width(avx512, nullptr, "4"), w4);
    // MCSM_NO_SIMD beats everything ("0" counts as unset).
    EXPECT_EQ(simd::pick_width(avx512, "1", "8"), 1);
    EXPECT_EQ(simd::pick_width(avx512, "0", nullptr), w8);
    // Malformed or unsupported width requests fall back to scalar.
    EXPECT_EQ(simd::pick_width(avx512, nullptr, "2"), 1);
    EXPECT_EQ(simd::pick_width(avx512, nullptr, "banana"), 1);
    EXPECT_EQ(simd::pick_width(avx512, nullptr, "1"), 1);
}

TEST(SimdLanes, LaneKernelBitIdenticalToScalarFastAcrossWidths) {
    BatchBench bench;
    const spice::MosfetBatch& batch =
        bench.circuit.workspace().mosfet_batch();
    std::mt19937 rng(20260808);
    std::vector<MosCurrent> fast(batch.size());
    std::vector<MosCurrent> lanes(batch.size());

    // ±18 V excursions are unphysical but drive the pure math through every
    // region: deep subthreshold down to flushed-to-zero F terms, the
    // vds = 0 seam, strong inversion, reversed drain/source.
    std::uniform_real_distribution<double> wide(-18.0, 18.0);

    auto check_x = [&](const std::vector<double>& x, int w) {
        batch.evaluate(x, fast.data(), /*fast=*/true);
        batch.evaluate_lanes(x, lanes.data());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(bits_of(lanes[i].ids), bits_of(fast[i].ids))
                << "ids device " << i << " width " << w << " lane "
                << lanes[i].ids << " scalar " << fast[i].ids;
            EXPECT_EQ(bits_of(lanes[i].gm), bits_of(fast[i].gm))
                << "gm device " << i << " width " << w;
            EXPECT_EQ(bits_of(lanes[i].gds), bits_of(fast[i].gds))
                << "gds device " << i << " width " << w;
            EXPECT_EQ(bits_of(lanes[i].gms), bits_of(fast[i].gms))
                << "gms device " << i << " width " << w;
            EXPECT_EQ(bits_of(lanes[i].gmb), bits_of(fast[i].gmb))
                << "gmb device " << i << " width " << w;
        }
    };

    for (int w : runnable_widths()) {
        ForcedWidth guard(w);
        ASSERT_EQ(spice::ekv_lane_width(), w);
        for (int trial = 0; trial < 60; ++trial) {
            std::vector<double> x = bench.random_x(rng);
            if (trial % 2 == 1)
                for (int n = 1; n < bench.n_nodes; ++n)
                    x[static_cast<std::size_t>(n)] = wide(rng);
            check_x(x, w);
        }
        // vds = 0 region seam on every device: all nodes at one potential.
        for (double v : {0.0, 0.6, 1.2}) {
            std::vector<double> x(
                static_cast<std::size_t>(bench.n_nodes) +
                    static_cast<std::size_t>(bench.circuit.branch_total()),
                0.0);
            for (int n = 1; n < bench.n_nodes; ++n)
                x[static_cast<std::size_t>(n)] = v;
            check_x(x, w);
        }
    }
}

// Parametrizable fixture for masked-remainder and gated-compaction tests:
// `n_mos` devices (any count, deliberately including non-multiples of the
// lane widths) over a handful of shared nodes.
struct SmallBatch {
    Circuit circuit;
    tech::Technology tech = tech::make_tech130();
    int n_nodes = 0;

    explicit SmallBatch(int n_mos) {
        const int vdd = circuit.node("vdd");
        circuit.add_vsource("VDD", vdd, Circuit::kGround,
                            SourceSpec::dc(tech.vdd));
        for (int k = 0; k < 4; ++k) {
            std::string n = "n";
            n += std::to_string(k);
            circuit.node(n);
        }
        std::mt19937 rng(11);
        std::uniform_int_distribution<int> pick(0, 5);
        std::uniform_real_distribution<double> wmul(0.5, 3.0);
        for (int k = 0; k < n_mos; ++k) {
            const bool nmos = k % 2 == 0;
            const auto& p = nmos ? tech.nmos : tech.pmos;
            const double w =
                (nmos ? tech.wn_unit : tech.wp_unit) * wmul(rng);
            std::string name = "M";
            name += std::to_string(k);
            circuit.add_mosfet(name, pick(rng), pick(rng), pick(rng),
                               nmos ? Circuit::kGround : vdd, p, w,
                               tech.lmin);
        }
        circuit.prepare();
        n_nodes = circuit.node_count();
    }

    std::vector<double> zeros() const {
        return std::vector<double>(
            static_cast<std::size_t>(n_nodes) +
                static_cast<std::size_t>(circuit.branch_total()),
            0.0);
    }
};

struct AssemblySnapshot {
    std::vector<double> vals;
    std::vector<double> rhs;
};

AssemblySnapshot assemble_snapshot(Circuit& c, const spice::SimContext& ctx) {
    spice::SolverWorkspace& ws = c.workspace();
    const spice::Stamper& st = ws.assemble(ctx);
    const auto vals = ws.csr_matrix().values();
    return {{vals.begin(), vals.end()}, st.rhs()};
}

void expect_snapshots_bitwise(const AssemblySnapshot& got,
                              const AssemblySnapshot& want, int w,
                              const char* stage) {
    ASSERT_EQ(got.vals.size(), want.vals.size());
    ASSERT_EQ(got.rhs.size(), want.rhs.size());
    for (std::size_t i = 0; i < got.vals.size(); ++i)
        EXPECT_EQ(bits_of(got.vals[i]), bits_of(want.vals[i]))
            << stage << " width " << w << " matrix slot " << i;
    for (std::size_t i = 0; i < got.rhs.size(); ++i)
        EXPECT_EQ(bits_of(got.rhs[i]), bits_of(want.rhs[i]))
            << stage << " width " << w << " rhs row " << i;
}

// Full assembly at every width for batch sizes that exercise the masked
// remainder lanes (non-multiples of 4 and 8, including sizes below one
// lane) must reproduce the scalar path bit for bit.
TEST(SimdLanes, MaskedRemainderLanesMatchScalarAssembly) {
    std::mt19937 rng(20260808);
    for (int n_mos : {1, 3, 5, 7, 9, 13}) {
        SmallBatch bench(n_mos);
        std::vector<double> x = bench.zeros();
        std::uniform_real_distribution<double> v(-0.4, bench.tech.vdd + 0.4);
        for (int n = 1; n < bench.n_nodes; ++n)
            x[static_cast<std::size_t>(n)] = v(rng);

        spice::SimContext ctx;
        ctx.mode = spice::SimContext::Mode::kDc;
        ctx.x = &x;

        AssemblySnapshot want;
        {
            ForcedWidth guard(1);
            want = assemble_snapshot(bench.circuit, ctx);
        }
        for (int w : runnable_widths()) {
            if (w == 1) continue;
            ForcedWidth guard(w);
            const AssemblySnapshot got =
                assemble_snapshot(bench.circuit, ctx);
            expect_snapshots_bitwise(got, want, w, "full batch");
        }
    }
}

// Delta-gated compaction: after a warm-up assembly fills the tangent cache,
// moving a subset of nodes leaves a partial active set (generally a
// non-multiple of the width). Every width must agree with the scalar gated
// path bit for bit at every step of the sequence — same matrix, same RHS,
// same cache evolution.
TEST(SimdLanes, GatedActiveSetCompactionMatchesScalar) {
    const std::vector<int> widths = runnable_widths();
    // One independently-built circuit per width so each runs the identical
    // cache-state sequence from scratch.
    for (int n_mos : {6, 11}) {
        std::vector<AssemblySnapshot> want;  // from the width-1 run
        for (int w : widths) {
            ForcedWidth guard(w);
            SmallBatch bench(n_mos);
            std::vector<double> x = bench.zeros();
            std::mt19937 rng(99);
            std::uniform_real_distribution<double> v(0.0, bench.tech.vdd);
            for (int n = 1; n < bench.n_nodes; ++n)
                x[static_cast<std::size_t>(n)] = v(rng);

            spice::SimContext ctx;
            ctx.mode = spice::SimContext::Mode::kDc;
            ctx.stale_dv = 0.05;
            ctx.run_id = 1;
            ctx.x = &x;

            std::vector<AssemblySnapshot> got;
            // Step 0: cold cache, everything active.
            got.push_back(assemble_snapshot(bench.circuit, ctx));
            // Step 1: unchanged voltages — empty active set (pure replay).
            got.push_back(assemble_snapshot(bench.circuit, ctx));
            // Steps 2..4: bump one more node each time — growing partial
            // active sets of awkward sizes.
            for (int step = 2; step <= 4; ++step) {
                x[static_cast<std::size_t>(step)] += 0.2;
                got.push_back(assemble_snapshot(bench.circuit, ctx));
            }
            // Step 5: sub-threshold nudge stays inside the gate.
            x[2] += 0.001;
            got.push_back(assemble_snapshot(bench.circuit, ctx));

            if (w == 1) {
                want = std::move(got);
                continue;
            }
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t s = 0; s < got.size(); ++s)
                expect_snapshots_bitwise(got[s], want[s], w, "gated step");
        }
    }
}

// Denormal drain currents: bias one device so F(vp - vs) lands in the
// denormal range; the lane kernel must reproduce the scalar bits exactly
// (and the value really is denormal, so the seam is actually exercised).
TEST(SimdLanes, DenormalDrainCurrentsBitIdentical) {
    // One NMOS with explicit terminals: gate and bulk at ground, source and
    // drain ramped far positive, so F(vp - ws) underflows gradually and the
    // drain current walks through the denormal range before hitting zero.
    Circuit c;
    tech::Technology t = tech::make_tech130();
    const int vdd = c.node("vdd");
    const int nd = c.node("nd");
    const int ns = c.node("ns");
    c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(t.vdd));
    c.add_mosfet("M0", nd, Circuit::kGround, ns, Circuit::kGround, t.nmos,
                 t.wn_unit, t.lmin);
    c.prepare();
    const spice::MosfetBatch& batch = c.workspace().mosfet_batch();
    ASSERT_EQ(batch.size(), 1u);
    std::vector<MosCurrent> fast(batch.size());
    std::vector<MosCurrent> lanes(batch.size());

    bool saw_denormal = false;
    // Walk the source potential through the band where sp^2 drops across
    // the normal/denormal boundary (arg = (vp - ws)/2Ut near -350..-372).
    for (double vs = 15.0; vs <= 20.0; vs += 0.02) {
        std::vector<double> x(
            static_cast<std::size_t>(c.node_count()) +
                static_cast<std::size_t>(c.branch_total()),
            0.0);
        x[static_cast<std::size_t>(vdd)] = t.vdd;
        x[static_cast<std::size_t>(ns)] = vs;
        x[static_cast<std::size_t>(nd)] = vs + 0.7;
        batch.evaluate(x, fast.data(), /*fast=*/true);
        for (int w : runnable_widths()) {
            ForcedWidth guard(w);
            batch.evaluate_lanes(x, lanes.data());
            EXPECT_EQ(bits_of(lanes[0].ids), bits_of(fast[0].ids))
                << "vs " << vs << " width " << w << " lane " << lanes[0].ids
                << " scalar " << fast[0].ids;
            EXPECT_EQ(bits_of(lanes[0].gm), bits_of(fast[0].gm))
                << "vs " << vs << " width " << w;
        }
        const double a = std::fabs(fast[0].ids);
        if (a > 0.0 && a < std::numeric_limits<double>::min())
            saw_denormal = true;
    }
    EXPECT_TRUE(saw_denormal)
        << "sweep never produced a denormal drain current; widen the range";
}

// Repeated assemblies with the default dispatch must be bitwise stable
// (the cross-thread-count bitwise guarantee is covered by
// Characterizer.ShortcutSweepBitwiseAcrossThreadCounts, which runs with
// the same default SIMD dispatch).
TEST(SimdLanes, RepeatedAssembliesBitwiseIdentical) {
    SmallBatch bench(9);
    std::vector<double> x = bench.zeros();
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> v(0.0, bench.tech.vdd);
    for (int n = 1; n < bench.n_nodes; ++n)
        x[static_cast<std::size_t>(n)] = v(rng);
    spice::SimContext ctx;
    ctx.mode = spice::SimContext::Mode::kDc;
    ctx.x = &x;

    const AssemblySnapshot first = assemble_snapshot(bench.circuit, ctx);
    for (int rep = 0; rep < 5; ++rep) {
        const AssemblySnapshot again =
            assemble_snapshot(bench.circuit, ctx);
        expect_snapshots_bitwise(again, first, spice::ekv_lane_width(),
                                 "repeat");
    }
}

}  // namespace
}  // namespace mcsm
