// Batch-first device evaluation tests:
//  * the fast softplus/logistic pair agrees with the libm reference to
//    tight tolerance over the whole argument range,
//  * batched SoA EKV evaluation with the reference kernel reproduces the
//    scalar Mosfet::evaluate_current bit-for-bit (ulp-scale) over
//    randomized operating points in every region,
//  * the fast kernel stays within a physically negligible tolerance of the
//    scalar reference on the same points,
//  * solve_dc_sweep (blocked multi-RHS quasi-Newton) matches per-point
//    solve_dc on a fully forced characterization fixture and on a generic
//    circuit with free nodes,
//  * shortcut characterization is bitwise deterministic across thread
//    counts.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "cells/library.h"
#include "common/numeric.h"
#include "core/characterizer.h"
#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "spice/device_batch.h"
#include "tech/tech130.h"

namespace mcsm {
namespace {

using spice::Circuit;
using spice::MosCurrent;
using spice::Mosfet;
using spice::SourceSpec;

// Distance in representable doubles (same-sign finite inputs; equal bits
// return 0). Used for the "ulp-scale" SoA-vs-scalar assertion.
std::int64_t ulp_diff(double a, double b) {
    if (a == b) return 0;
    auto ordered = [](double x) {
        const auto bits = std::bit_cast<std::int64_t>(x);
        return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits
                        : bits;
    };
    const std::int64_t da = ordered(a);
    const std::int64_t db = ordered(b);
    return da > db ? da - db : db - da;
}

TEST(FastEkv, SoftplusLogisticPairMatchesReference) {
    std::mt19937 rng(20260728);
    std::uniform_real_distribution<double> wide(-80.0, 80.0);
    std::uniform_real_distribution<double> core(-12.0, 12.0);
    std::uniform_real_distribution<double> seam(7.9, 8.1);

    auto check = [](double x) {
        const SpSig f = softplus_logistic_fast(x);
        const SpSig r = softplus_logistic_ref(x);
        if (r.sp < 1e-300) {
            // Deep-underflow tail (the fast path clamps its exponential
            // argument at 708 to stay in the normal range): both values
            // are zero for any physical purpose.
            EXPECT_LT(f.sp, 1e-290) << "x=" << x;
            EXPECT_LT(f.sig, 1e-290) << "x=" << x;
            return;
        }
        EXPECT_NEAR(f.sp, r.sp, 5e-11 * std::fabs(r.sp)) << "x=" << x;
        EXPECT_NEAR(f.sig, r.sig, 5e-12 * std::max(r.sig, 1e-300))
            << "x=" << x;
    };

    for (int i = 0; i < 4000; ++i) check(wide(rng));
    for (int i = 0; i < 4000; ++i) check(core(rng));
    // The piecewise seams and the reference's own switch points.
    for (int i = 0; i < 500; ++i) {
        const double s = seam(rng);
        check(s);
        check(-s);
    }
    for (double x : {-745.0, -300.0, -30.0, -8.0, 0.0, 8.0, 30.0, 700.0})
        check(x);
}

// A circuit holding NMOS and PMOS devices of varied geometry between the
// first few nodes, prepared so the workspace exposes its MosfetBatch.
struct BatchBench {
    Circuit circuit;
    tech::Technology tech = tech::make_tech130();
    std::vector<const Mosfet*> mosfets;
    int n_nodes = 0;

    BatchBench() {
        const int vdd = circuit.node("vdd");
        circuit.add_vsource("VDD", vdd, Circuit::kGround,
                            SourceSpec::dc(tech.vdd));
        // Built with += to dodge GCC 12 -Wrestrict false positives on
        // `const char* + std::string&&` (see test_sta_scale.cpp).
        for (int k = 0; k < 6; ++k) {
            std::string n = "n";
            n += std::to_string(k);
            circuit.node(n);
        }
        std::mt19937 rng(7);
        std::uniform_int_distribution<int> pick(0, 6);
        std::uniform_real_distribution<double> wmul(0.5, 4.0);
        for (int k = 0; k < 24; ++k) {
            const bool nmos = k % 2 == 0;
            const auto& p = nmos ? tech.nmos : tech.pmos;
            const double w = (nmos ? tech.wn_unit : tech.wp_unit) * wmul(rng);
            std::string name = "M";
            name += std::to_string(k);
            circuit.add_mosfet(name, pick(rng), pick(rng), pick(rng),
                               nmos ? Circuit::kGround : vdd, p, w, tech.lmin);
        }
        circuit.prepare();
        for (const auto& dev : circuit.devices())
            if (const auto* m = dynamic_cast<const Mosfet*>(dev.get()))
                mosfets.push_back(m);
        n_nodes = circuit.node_count();
    }

    // Random node voltages spanning every device region: below-ground and
    // above-rail margins included (the characterizer sweeps there).
    std::vector<double> random_x(std::mt19937& rng) const {
        std::uniform_real_distribution<double> v(-0.4, tech.vdd + 0.4);
        std::vector<double> x(static_cast<std::size_t>(n_nodes) +
                                  static_cast<std::size_t>(
                                      circuit.branch_total()),
                              0.0);
        for (int n = 1; n < n_nodes; ++n)
            x[static_cast<std::size_t>(n)] = v(rng);
        return x;
    }
};

TEST(MosfetBatch, SoAReferenceKernelMatchesScalarAtUlpScale) {
    BatchBench bench;
    const spice::MosfetBatch& batch =
        bench.circuit.workspace().mosfet_batch();
    ASSERT_EQ(batch.size(), bench.mosfets.size());

    std::mt19937 rng(20260728);
    std::vector<MosCurrent> out(batch.size());
    for (int trial = 0; trial < 200; ++trial) {
        const std::vector<double> x = bench.random_x(rng);
        batch.evaluate(x, out.data(), /*fast=*/false);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Mosfet& m = *bench.mosfets[i];
            const MosCurrent ref = m.evaluate_current(
                x[static_cast<std::size_t>(m.drain())],
                x[static_cast<std::size_t>(m.gate())],
                x[static_cast<std::size_t>(m.source())],
                x[static_cast<std::size_t>(m.bulk())]);
            EXPECT_LE(ulp_diff(out[i].ids, ref.ids), 2) << "device " << i;
            EXPECT_LE(ulp_diff(out[i].gm, ref.gm), 2) << "device " << i;
            EXPECT_LE(ulp_diff(out[i].gds, ref.gds), 2) << "device " << i;
            EXPECT_LE(ulp_diff(out[i].gms, ref.gms), 2) << "device " << i;
            EXPECT_LE(ulp_diff(out[i].gmb, ref.gmb), 2) << "device " << i;
        }
    }
}

TEST(MosfetBatch, FastKernelTightToScalarInAllRegions) {
    BatchBench bench;
    const spice::MosfetBatch& batch =
        bench.circuit.workspace().mosfet_batch();
    std::mt19937 rng(42);
    std::vector<MosCurrent> out(batch.size());

    // Every current/conductance within 1e-9 relative with an attoamp-scale
    // absolute floor: far below device tolerances, Newton vtol, and every
    // golden-waveform gate.
    auto expect_close = [](double got, double want, const char* what,
                     std::size_t i) {
        EXPECT_NEAR(got, want, 1e-9 * std::fabs(want) + 1e-18)
            << what << " device " << i;
    };
    auto check_x = [&](const std::vector<double>& x) {
        batch.evaluate(x, out.data(), /*fast=*/true);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Mosfet& m = *bench.mosfets[i];
            const MosCurrent ref = m.evaluate_current(
                x[static_cast<std::size_t>(m.drain())],
                x[static_cast<std::size_t>(m.gate())],
                x[static_cast<std::size_t>(m.source())],
                x[static_cast<std::size_t>(m.bulk())]);
            expect_close(out[i].ids, ref.ids, "ids", i);
            expect_close(out[i].gm, ref.gm, "gm", i);
            expect_close(out[i].gds, ref.gds, "gds", i);
            expect_close(out[i].gms, ref.gms, "gms", i);
            expect_close(out[i].gmb, ref.gmb, "gmb", i);
        }
    };

    // Randomized points (subthreshold, linear, saturation, reversed d/s and
    // the sweep margins all occur across 24 devices x shared nodes).
    for (int trial = 0; trial < 200; ++trial) check_x(bench.random_x(rng));
    // Deterministic corners: rails and mid-rail.
    for (double va : {0.0, 0.6, 1.2}) {
        for (double vb : {0.0, 0.05, 1.2}) {
            std::vector<double> x(static_cast<std::size_t>(bench.n_nodes) +
                                      static_cast<std::size_t>(
                                          bench.circuit.branch_total()),
                                  0.0);
            for (int n = 1; n < bench.n_nodes; ++n)
                x[static_cast<std::size_t>(n)] = (n % 2 != 0) ? va : vb;
            check_x(x);
        }
    }
}

// NOR2 characterization-style fixture: every node forced, so the blocked
// sweep's shared-factorization rounds are exact.
TEST(DcSweep, BlockedMatchesPerPointOnForcedFixture) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    auto build = [&]() {
        Circuit c;
        const int vdd = c.node("vdd");
        const int a = c.node("a");
        const int b = c.node("b");
        const int out = c.node("out");
        c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(t.vdd));
        c.add_vsource("VA", a, Circuit::kGround, SourceSpec::dc(0.0));
        c.add_vsource("VB", b, Circuit::kGround, SourceSpec::dc(0.0));
        c.add_vsource("VOUT", out, Circuit::kGround, SourceSpec::dc(0.0));
        const cells::CellType& nor = lib.get("NOR2");
        std::unordered_map<std::string, int> conn{{cells::kVdd, vdd},
                                                  {cells::kGnd, 0},
                                                  {"A", a},
                                                  {"B", b},
                                                  {cells::kOut, out}};
        // Force the internal stack node too (as the MCSM fixture does): a
        // floating stack node's DC value is only pinned to within leakage
        // indeterminacy, which is no basis for a voltage comparison.
        for (const std::string& formal : nor.internal_nodes()) {
            const int n = c.node("int_" + formal);
            conn[formal] = n;
            c.add_vsource("VN_" + formal, n, Circuit::kGround,
                          SourceSpec::dc(0.6));
        }
        nor.instantiate(c, "DUT", conn);
        return c;
    };

    // Grid of (va, vb, vout) including the characterization margins.
    std::vector<double> grid{-0.2, 0.0, 0.3, 0.6, 0.9, 1.2, 1.4};
    std::vector<double> values;
    for (double va : grid)
        for (double vb : grid)
            for (double vout : grid) {
                values.push_back(va);
                values.push_back(vb);
                values.push_back(vout);
            }
    const std::size_t n_points = values.size() / 3;

    // Per-point reference.
    Circuit ref = build();
    ref.prepare();
    std::vector<std::vector<double>> want;
    spice::DcResult dc;
    for (std::size_t p = 0; p < n_points; ++p) {
        ref.vsource("VA").set_spec(SourceSpec::dc(values[p * 3 + 0]));
        ref.vsource("VB").set_spec(SourceSpec::dc(values[p * 3 + 1]));
        ref.vsource("VOUT").set_spec(SourceSpec::dc(values[p * 3 + 2]));
        dc = spice::solve_dc(ref, {}, dc.x.empty() ? nullptr : &dc.x);
        want.push_back(dc.x);
    }

    Circuit blk = build();
    blk.prepare();
    std::vector<spice::VSource*> swept{&blk.vsource("VA"),
                                       &blk.vsource("VB"),
                                       &blk.vsource("VOUT")};
    std::size_t seen = 0;
    spice::solve_dc_sweep(
        blk, swept, values, n_points, {}, nullptr,
        [&](std::size_t p, const std::vector<double>& x) {
            ASSERT_EQ(p, seen++);
            ASSERT_EQ(x.size(), want[p].size());
            for (std::size_t i = 0; i < x.size(); ++i)
                EXPECT_NEAR(x[i], want[p][i],
                            1e-6 * std::max(1.0, std::fabs(want[p][i])))
                    << "point " << p << " unknown " << i;
        });
    EXPECT_EQ(seen, n_points);
}

// Generic circuit with free nodes: the shared-matrix rounds are a
// quasi-Newton iteration here; converged points must still land on the
// true solution, and stragglers must fall back cleanly.
TEST(DcSweep, BlockedMatchesPerPointWithFreeNodes) {
    const tech::Technology t = tech::make_tech130();
    auto build = [&]() {
        Circuit c;
        const int vdd = c.node("vdd");
        const int in = c.node("in");
        const int out = c.node("out");  // free node
        const int mid = c.node("mid");  // free node
        c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(t.vdd));
        c.add_vsource("VIN", in, Circuit::kGround, SourceSpec::dc(0.0));
        c.add_mosfet("MN", out, in, Circuit::kGround, Circuit::kGround,
                     t.nmos, t.wn_unit, t.lmin);
        c.add_mosfet("MP", out, in, vdd, vdd, t.pmos, t.wp_unit, t.lmin);
        c.add_resistor("RL", out, mid, 5e3);
        c.add_resistor("RG", mid, Circuit::kGround, 50e3);
        return c;
    };

    std::vector<double> values;
    for (double v = -0.1; v <= 1.31; v += 0.05) values.push_back(v);
    const std::size_t n_points = values.size();

    Circuit ref = build();
    ref.prepare();
    std::vector<std::vector<double>> want;
    spice::DcResult dc;
    for (std::size_t p = 0; p < n_points; ++p) {
        ref.vsource("VIN").set_spec(SourceSpec::dc(values[p]));
        dc = spice::solve_dc(ref, {}, dc.x.empty() ? nullptr : &dc.x);
        want.push_back(dc.x);
    }

    Circuit blk = build();
    blk.prepare();
    std::vector<spice::VSource*> swept{&blk.vsource("VIN")};
    spice::DcSweepOptions sopt;
    sopt.block = 8;
    std::size_t seen = 0;
    spice::solve_dc_sweep(
        blk, swept, values, n_points, sopt, nullptr,
        [&](std::size_t p, const std::vector<double>& x) {
            ++seen;
            for (std::size_t i = 0; i < x.size(); ++i)
                EXPECT_NEAR(x[i], want[p][i],
                            1e-6 * std::max(1.0, std::fabs(want[p][i])))
                    << "point " << p << " unknown " << i;
        });
    EXPECT_EQ(seen, n_points);
}

TEST(Characterizer, ShortcutSweepBitwiseAcrossThreadCounts) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    const core::Characterizer chr(lib);

    core::CharOptions opt;
    opt.grid_points = 5;
    opt.transient_caps = false;
    opt.threads = 1;
    const core::CsmModel serial =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);
    opt.threads = 3;
    const core::CsmModel parallel =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, opt);

    auto same = [](const lut::NdTable& a, const lut::NdTable& b) {
        ASSERT_EQ(a.value_count(), b.value_count());
        for (std::size_t i = 0; i < a.value_count(); ++i)
            EXPECT_EQ(a.values()[i], b.values()[i]) << a.name() << "[" << i
                                                    << "]";
    };
    same(serial.i_out, parallel.i_out);
    same(serial.c_out, parallel.c_out);
    ASSERT_EQ(serial.i_internal.size(), parallel.i_internal.size());
    for (std::size_t j = 0; j < serial.i_internal.size(); ++j)
        same(serial.i_internal[j], parallel.i_internal[j]);
    ASSERT_EQ(serial.c_miller.size(), parallel.c_miller.size());
    for (std::size_t p = 0; p < serial.c_miller.size(); ++p)
        same(serial.c_miller[p], parallel.c_miller[p]);
    ASSERT_EQ(serial.c_in.size(), parallel.c_in.size());
    for (std::size_t p = 0; p < serial.c_in.size(); ++p)
        same(serial.c_in[p], parallel.c_in[p]);
}

}  // namespace
}  // namespace mcsm
