// End-to-end model tests: characterize CSM models of INV and NOR2 (fast
// model-linearization capacitance mode) and check the model structure, DC
// consistency, and accuracy against the transistor-level golden runs.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <sstream>

#include "core/characterizer.h"
#include "core/csm_device.h"
#include "core/explicit_sim.h"
#include "core/model_io.h"
#include "core/model_scenarios.h"
#include "core/selective.h"
#include "engine/scenarios.h"
#include "tech/tech130.h"
#include "wave/metrics.h"

namespace mcsm::core {
namespace {

using engine::GoldenCell;
using engine::HistoryCase;
using engine::LoadSpec;

// Shared, lazily-characterized models (characterization is the slow part).
class ModelSuite {
public:
    static const ModelSuite& get() {
        static ModelSuite suite;
        return suite;
    }

    tech::Technology tech = tech::make_tech130();
    cells::CellLibrary lib{tech};
    CsmModel inv_sis;
    CsmModel nor_mcsm;
    CsmModel nor_baseline;

private:
    ModelSuite() {
        const Characterizer chr(lib);
        CharOptions fast;
        fast.transient_caps = false;
        fast.grid_points = 11;
        inv_sis = chr.characterize("INV_X1", ModelKind::kSis, {"A"}, fast);
        CharOptions nor_opt = fast;
        nor_opt.grid_points = 9;
        nor_mcsm =
            chr.characterize("NOR2", ModelKind::kMcsm, {"A", "B"}, nor_opt);
        nor_baseline = chr.characterize("NOR2", ModelKind::kMisBaseline,
                                        {"A", "B"}, nor_opt);
    }
};

TEST(CsmCharacterize, InvSisStructure) {
    const auto& s = ModelSuite::get();
    const CsmModel& m = s.inv_sis;
    EXPECT_EQ(m.kind, ModelKind::kSis);
    EXPECT_EQ(m.dim(), 2u);
    EXPECT_TRUE(m.internals.empty());
    ASSERT_EQ(m.c_in.size(), 1u);

    // Stable points: input low, output high -> no current.
    const std::array<double, 2> stable{0.0, s.tech.vdd};
    EXPECT_NEAR(m.io(stable), 0.0, 1e-7);
    // Input high, output still high: strong pull-down, current INTO cell.
    const std::array<double, 2> pulling{s.tech.vdd, s.tech.vdd};
    EXPECT_GT(m.io(pulling), 1e-5);
    // Input low, output low: pull-up delivers current (negative by our
    // convention).
    const std::array<double, 2> charging{0.0, 0.0};
    EXPECT_LT(m.io(charging), -1e-5);

    // Input cap is fF-scale and positive everywhere.
    for (double vin = 0.0; vin <= s.tech.vdd; vin += 0.1) {
        const double c = m.cin(0, vin);
        EXPECT_GT(c, 0.1e-15);
        EXPECT_LT(c, 20e-15);
    }
}

TEST(CsmCharacterize, NorMcsmStructure) {
    const auto& s = ModelSuite::get();
    const CsmModel& m = s.nor_mcsm;
    EXPECT_EQ(m.kind, ModelKind::kMcsm);
    EXPECT_EQ(m.dim(), 4u);
    ASSERT_EQ(m.internals.size(), 1u);
    EXPECT_EQ(m.internals[0], "N");
    ASSERT_EQ(m.i_internal.size(), 1u);
    ASSERT_EQ(m.c_miller.size(), 2u);

    // '00', out=vdd, N=vdd: stable - both currents vanish.
    const double vdd = s.tech.vdd;
    const std::array<double, 4> stable{0.0, 0.0, vdd, vdd};
    EXPECT_NEAR(m.io(stable), 0.0, 1e-7);
    EXPECT_NEAR(m.in(0, stable), 0.0, 1e-7);

    // '00' with out=0: pull-up charges the load through the stack
    // (current flows out of the cell at OUT: negative Io).
    const std::array<double, 4> rising{0.0, 0.0, vdd, 0.0};
    EXPECT_LT(m.io(rising), -1e-5);

    // '00' with N=0: the stack node must charge up (negative IN).
    const std::array<double, 4> n_charges{0.0, 0.0, 0.0, 0.0};
    EXPECT_LT(m.in(0, n_charges), -1e-5);

    // Capacitances positive at a mid bias.
    const std::array<double, 4> mid{0.6, 0.6, 0.6, 0.6};
    EXPECT_GT(m.co(mid), 0.1e-15);
    EXPECT_GT(m.cn(0, mid), 0.1e-15);
    EXPECT_GT(m.cm(0, mid), 0.0);
    EXPECT_GT(m.cm(1, mid), 0.0);
}

TEST(CsmCharacterize, ModelDcStateMatchesPhysics) {
    const auto& s = ModelSuite::get();
    const double vdd = s.tech.vdd;

    // '00': out high, N high.
    const std::array<double, 2> in00{0.0, 0.0};
    auto st = s.nor_mcsm.dc_state(in00);
    ASSERT_EQ(st.size(), 2u);  // [N, out]
    EXPECT_NEAR(st[0], vdd, 0.06);
    EXPECT_NEAR(st[1], vdd, 0.06);

    // '10' (A=1): out low, N connected to VDD via M4.
    const std::array<double, 2> in10{vdd, 0.0};
    st = s.nor_mcsm.dc_state(in10);
    EXPECT_NEAR(st[0], vdd, 0.06);
    EXPECT_NEAR(st[1], 0.0, 0.06);

    // '01' (B=1): out low, N discharged to the body-affected |Vt,p|.
    const std::array<double, 2> in01{0.0, vdd};
    st = s.nor_mcsm.dc_state(in01);
    EXPECT_GT(st[0], 0.05);
    EXPECT_LT(st[0], 0.7);
    EXPECT_NEAR(st[1], 0.0, 0.06);
}

// Golden vs model delay for one history case; returns {golden, model} 50%
// delays of the final rising output transition.
std::pair<double, double> history_delays(const CsmModel& nor_model,
                                         HistoryCase hc, int fanout) {
    const auto& s = ModelSuite::get();
    const engine::HistoryStimulus stim = engine::nor2_history(hc, s.tech.vdd);

    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 1e-12;

    GoldenCell golden(s.lib, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                      LoadSpec{0.0, fanout, "INV_X1"});
    const wave::Waveform g_out = golden.run(topt).node_waveform(golden.out_node());

    ModelLoadSpec mload;
    mload.fanout_count = fanout;
    mload.receiver = &s.inv_sis;
    ModelCell model(nor_model, {{"A", stim.a}, {"B", stim.b}}, mload);
    const wave::Waveform m_out = model.run(topt).node_waveform(model.out_node());

    const auto dg = wave::delay_50(stim.a, false, g_out, true, s.tech.vdd,
                                   stim.t_final - 0.2e-9);
    const auto dm = wave::delay_50(stim.a, false, m_out, true, s.tech.vdd,
                                   stim.t_final - 0.2e-9);
    EXPECT_TRUE(dg.has_value());
    EXPECT_TRUE(dm.has_value());
    return {dg.value_or(0.0), dm.value_or(0.0)};
}

TEST(CsmAccuracy, McsmTracksBothHistories) {
    const auto& s = ModelSuite::get();
    for (const HistoryCase hc : {HistoryCase::kFast10, HistoryCase::kSlow01}) {
        const auto [dg, dm] = history_delays(s.nor_mcsm, hc, 2);
        const double err = std::fabs(dm - dg) / dg;
        // The paper reports a 4% worst case for MCSM (Fig. 9).
        EXPECT_LT(err, 0.05) << "case=" << static_cast<int>(hc)
                             << " golden=" << dg << " model=" << dm;
    }
}

TEST(CsmAccuracy, BaselineMissesTheHistoryEffect) {
    const auto& s = ModelSuite::get();
    // The baseline model predicts (nearly) the same delay for both
    // histories, so it must err significantly on at least one of them.
    const auto [dg_fast, dm_fast] =
        history_delays(s.nor_baseline, HistoryCase::kFast10, 2);
    const auto [dg_slow, dm_slow] =
        history_delays(s.nor_baseline, HistoryCase::kSlow01, 2);
    const double err_fast = std::fabs(dm_fast - dg_fast) / dg_fast;
    const double err_slow = std::fabs(dm_slow - dg_slow) / dg_slow;
    EXPECT_GT(std::max(err_fast, err_slow), 0.08);
    // And the baseline cannot separate the two cases the way SPICE does.
    const double golden_split = std::fabs(dg_slow - dg_fast) / dg_slow;
    const double model_split = std::fabs(dm_slow - dm_fast) / dm_slow;
    EXPECT_LT(model_split, 0.6 * golden_split);
}

TEST(CsmAccuracy, McsmBeatsBaselineOnWorstCase) {
    const auto& s = ModelSuite::get();
    double worst_mcsm = 0.0;
    double worst_base = 0.0;
    for (const HistoryCase hc : {HistoryCase::kFast10, HistoryCase::kSlow01}) {
        const auto [dg_m, dm_m] = history_delays(s.nor_mcsm, hc, 1);
        const auto [dg_b, dm_b] = history_delays(s.nor_baseline, hc, 1);
        worst_mcsm = std::max(worst_mcsm, std::fabs(dm_m - dg_m) / dg_m);
        worst_base = std::max(worst_base, std::fabs(dm_b - dg_b) / dg_b);
    }
    EXPECT_LT(worst_mcsm, worst_base);
}

TEST(CsmExplicit, MatchesImplicitEngineOnCapLoad) {
    const auto& s = ModelSuite::get();
    const engine::MisStimulus stim =
        engine::nor2_simultaneous_fall(s.tech.vdd, 1.0e-9);

    const double cl = 5e-15;
    ExplicitOptions eopt;
    eopt.tstop = 2.5e-9;
    eopt.dt = 0.25e-12;
    eopt.load_cap = cl;
    const ExplicitResult er =
        simulate_explicit(s.nor_mcsm, {stim.a, stim.b}, eopt);

    ModelLoadSpec load;
    load.cap = cl;
    ModelCell cell(s.nor_mcsm, {{"A", stim.a}, {"B", stim.b}}, load);
    spice::TranOptions topt;
    topt.tstop = 2.5e-9;
    topt.dt = 1e-12;
    const wave::Waveform imp =
        cell.run(topt).node_waveform(cell.out_node());

    const double nrmse = wave::rmse_normalized(er.out, imp, 0.5e-9, 2.5e-9,
                                               s.tech.vdd);
    EXPECT_LT(nrmse, 0.03);
}

TEST(CsmSelective, PolicyPrefersCompleteModelForLightLoads) {
    const auto& s = ModelSuite::get();
    const double sig_light = internal_node_significance(s.nor_mcsm, 1e-15);
    const double sig_heavy = internal_node_significance(s.nor_mcsm, 100e-15);
    EXPECT_GT(sig_light, sig_heavy);
    EXPECT_GT(sig_light, 0.0);

    SelectivePolicy policy;
    policy.threshold = 0.5 * (sig_light + sig_heavy);
    EXPECT_EQ(&select_model(s.nor_mcsm, s.nor_baseline, 1e-15, policy),
              &s.nor_mcsm);
    EXPECT_EQ(&select_model(s.nor_mcsm, s.nor_baseline, 100e-15, policy),
              &s.nor_baseline);
}

TEST(CsmModelIo, RoundTripPreservesTables) {
    const auto& s = ModelSuite::get();
    std::stringstream ss;
    write_model(ss, s.nor_mcsm);
    const CsmModel copy = read_model(ss);
    EXPECT_EQ(copy.kind, ModelKind::kMcsm);
    EXPECT_EQ(copy.cell_name, "NOR2");
    ASSERT_EQ(copy.internals.size(), 1u);
    ASSERT_EQ(copy.i_out.value_count(), s.nor_mcsm.i_out.value_count());
    for (std::size_t i = 0; i < copy.i_out.value_count(); ++i)
        EXPECT_DOUBLE_EQ(copy.i_out.values()[i], s.nor_mcsm.i_out.values()[i]);
    // Interpolation agrees at an off-grid point.
    const std::array<double, 4> q{0.3, 0.45, 0.9, 0.2};
    EXPECT_DOUBLE_EQ(copy.io(q), s.nor_mcsm.io(q));
    EXPECT_DOUBLE_EQ(copy.cn(0, q), s.nor_mcsm.cn(0, q));
}

}  // namespace
}  // namespace mcsm::core
