// Observability layer: sharded counters under concurrency, snapshot
// consistency while writers are live, histogram bucket math, the trace
// ring buffer and its Chrome-JSON output, and the no-perturbation
// guarantee (solver results are bitwise identical with metrics on or off).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cells/library.h"
#include "engine/scenarios.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/tran_solver.h"
#include "tech/tech130.h"

using namespace mcsm;

namespace {

// Most tests count exact deltas on process-global metrics, so they read
// the before-value from the same handle rather than assuming zero.
#define SKIP_IF_OBS_OFF()                                               \
    if (!obs::compiled_in())                                            \
    GTEST_SKIP() << "built with MCSM_OBS=OFF: hooks compiled out"

TEST(ObsCounter, RegistryReturnsSameInstance) {
    SKIP_IF_OBS_OFF();
    obs::Counter& a = obs::counter("test.obs.identity");
    obs::Counter& b = obs::counter("test.obs.identity");
    EXPECT_EQ(&a, &b);
    obs::Gauge& g1 = obs::gauge("test.obs.gauge_identity");
    obs::Gauge& g2 = obs::gauge("test.obs.gauge_identity");
    EXPECT_EQ(&g1, &g2);
}

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
    SKIP_IF_OBS_OFF();
    obs::Counter& c = obs::counter("test.obs.concurrent");
    const long long before = c.value();
    constexpr int kThreads = 8;
    constexpr int kReps = 50000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&c] {
            for (int i = 0; i < kReps; ++i) c.add();
        });
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(c.value() - before,
              static_cast<long long>(kThreads) * kReps);
}

TEST(ObsCounter, DisabledUpdatesAreDropped) {
    SKIP_IF_OBS_OFF();
    obs::Counter& c = obs::counter("test.obs.kill_switch");
    const long long before = c.value();
    obs::set_enabled(false);
    c.add(7);
    obs::set_enabled(true);
    EXPECT_EQ(c.value(), before);
    c.add(7);
    EXPECT_EQ(c.value(), before + 7);
}

TEST(ObsGauge, SetAndAdd) {
    SKIP_IF_OBS_OFF();
    obs::Gauge& g = obs::gauge("test.obs.depth");
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketBoundariesAreConsistent) {
    SKIP_IF_OBS_OFF();
    // Every sampled value must land in a bucket whose [lower, next-lower)
    // range contains it, across the full covered span (1 ns to minutes
    // when values are nanoseconds).
    for (double v : {1.0, 1.5, 2.0, 3.99, 1e3, 12345.6, 1e6, 7.7e9, 2e11}) {
        const int idx = obs::Histogram::bucket_index(v);
        ASSERT_GE(idx, 0) << v;
        ASSERT_LT(idx, obs::Histogram::kBuckets) << v;
        EXPECT_LE(obs::Histogram::bucket_lower_bound(idx), v) << v;
        if (idx + 1 < obs::Histogram::kBuckets) {
            EXPECT_GT(obs::Histogram::bucket_lower_bound(idx + 1), v) << v;
        }
    }
    // Sub-1 and degenerate inputs clamp into the first bucket instead of
    // indexing out of range.
    EXPECT_EQ(obs::Histogram::bucket_index(0.5), 0);
    EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0);
    EXPECT_EQ(obs::Histogram::bucket_index(-3.0), 0);
    // Monotone: growing values never map to a smaller bucket.
    int last = 0;
    for (double v = 1.0; v < 1e12; v *= 1.07) {
        const int idx = obs::Histogram::bucket_index(v);
        EXPECT_GE(idx, last) << v;
        last = idx;
    }
}

TEST(ObsHistogram, StatsAndPercentiles) {
    SKIP_IF_OBS_OFF();
    obs::Histogram& h = obs::histogram("test.obs.latency");
    h.reset();
    // 100 observations 1..100 (treated as ns): p50 ~ 50, p99 ~ 99, with
    // log-bucket resolution (4 buckets per octave -> <= ~19% upper error).
    for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
    const obs::HistogramStats s = h.stats();
    EXPECT_EQ(s.count, 100);
    EXPECT_DOUBLE_EQ(s.sum, 5050.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_GE(s.p50, 40.0);
    EXPECT_LE(s.p50, 70.0);
    EXPECT_GE(s.p99, 80.0);
    EXPECT_LE(s.p99, 130.0);
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
}

TEST(ObsSnapshot, SafeWhileWritersAreLive) {
    SKIP_IF_OBS_OFF();
    obs::Counter& c = obs::counter("test.obs.snapshot_race");
    obs::Histogram& h = obs::histogram("test.obs.snapshot_race_ns");
    const long long before = c.value();
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                c.add();
                h.observe(42.0);
            }
        });
    long long last_seen = before;
    for (int i = 0; i < 200; ++i) {
        const obs::Snapshot snap = obs::snapshot();
        for (const auto& entry : snap.counters) {
            if (entry.name != "test.obs.snapshot_race") continue;
            // Counts observed under concurrent increments only grow.
            EXPECT_GE(entry.value, last_seen);
            last_seen = entry.value;
        }
        // Histogram invariant must hold on every concurrent snapshot.
        for (const auto& entry : snap.histograms) {
            if (entry.name == "test.obs.snapshot_race_ns") {
                EXPECT_GE(entry.stats.max, entry.stats.min);
            }
        }
        EXPECT_FALSE(snap.to_json().empty());
    }
    stop.store(true);
    for (std::thread& w : writers) w.join();
    EXPECT_GE(c.value(), last_seen);
}

TEST(ObsSnapshot, JsonContainsRegisteredMetrics) {
    SKIP_IF_OBS_OFF();
    obs::counter("test.obs.json_counter").add(3);
    obs::gauge("test.obs.json_gauge").set(-2);
    obs::histogram("test.obs.json_hist").observe(5.0);
    const std::string json = obs::snapshot().to_json();
    EXPECT_NE(json.find("\"test.obs.json_counter\""), std::string::npos);
    EXPECT_NE(json.find("\"test.obs.json_gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"test.obs.json_hist\""), std::string::npos);
    const std::string human = obs::snapshot().format_human();
    EXPECT_NE(human.find("test.obs.json_counter"), std::string::npos);
}

TEST(ObsScopedLatency, ObservesOnDestruction) {
    SKIP_IF_OBS_OFF();
    obs::Histogram& h = obs::histogram("test.obs.scoped_ns");
    h.reset();
    { const obs::ScopedLatency timer(h); }
    EXPECT_EQ(h.stats().count, 1);
    EXPECT_GE(h.stats().min, 0.0);
}

TEST(ObsTrace, WritesValidChromeJsonAndWrapsRing) {
    SKIP_IF_OBS_OFF();
    const std::string path = "test_obs_trace.json";
    obs::TraceOptions topt;
    topt.path = path;
    topt.ring_events = 16;  // minimum ring: 100 spans must wrap, not grow
    obs::start_trace(topt);
    ASSERT_TRUE(obs::trace_active());
    for (int i = 0; i < 100; ++i) {
        const obs::Span span("test.span", "labelled");
    }
    ASSERT_TRUE(obs::stop_trace());
    EXPECT_FALSE(obs::trace_active());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"test.span\""), std::string::npos);
    EXPECT_NE(json.find("\"detail\":\"labelled\""), std::string::npos);
    EXPECT_NE(json.find("]}"), std::string::npos);
    // Ring capacity bounds the retained events from this thread.
    std::size_t events = 0;
    for (std::size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
         pos = json.find("\"ph\":\"X\"", pos + 1))
        ++events;
    EXPECT_LE(events, topt.ring_events);
    EXPECT_GE(events, 1u);
    std::remove(path.c_str());
}

TEST(ObsTrace, InactiveSpansEmitNothing) {
    SKIP_IF_OBS_OFF();
    ASSERT_FALSE(obs::trace_active());
    // Spans outside start/stop must be dropped, not queued for the next
    // trace: a later capture of zero spans stays empty.
    { const obs::Span span("test.stale"); }
    const std::string path = "test_obs_trace_empty.json";
    obs::TraceOptions topt;
    topt.path = path;
    obs::start_trace(topt);
    ASSERT_TRUE(obs::stop_trace());
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str().find("test.stale"), std::string::npos);
    std::remove(path.c_str());
}

// The no-perturbation guarantee: instrumentation must never change solver
// results. Run the same golden transient with metrics+tracing enabled and
// disabled and require bitwise-identical waveforms. (This also runs, with
// both halves trivially identical, when MCSM_OBS=OFF.)
TEST(ObsDeterminism, ResultsBitwiseIdenticalOnAndOff) {
    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, tech.vdd);
    spice::TranOptions topt;
    topt.tstop = 2.5e-9;
    topt.dt = 2e-12;

    const auto run_once = [&](bool obs_on) {
        obs::set_enabled(obs_on);
        engine::GoldenCell cell(lib, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                                engine::LoadSpec{5e-15, 0, ""});
        const spice::TranResult res = cell.run(topt);
        return res.node_waveform(cell.out_node());
    };
    const wave::Waveform on = run_once(true);
    const wave::Waveform off = run_once(false);
    obs::set_enabled(true);

    for (double t = 0.0; t <= topt.tstop; t += 5e-12) {
        // Bitwise: exact FP equality, no tolerance.
        ASSERT_EQ(on.at(t), off.at(t)) << "t=" << t;
    }
}

// Satellite 1: TranStats is the single source for both the result struct
// and the solver.tran.* counters -- the deltas must match exactly.
TEST(ObsTranStats, CountersMatchResultStats) {
    SKIP_IF_OBS_OFF();
    obs::Counter& solves = obs::counter("solver.tran.solves");
    obs::Counter& iters = obs::counter("solver.tran.newton_iters");
    obs::Counter& accepted = obs::counter("solver.tran.steps_accepted");
    const long long solves0 = solves.value();
    const long long iters0 = iters.value();
    const long long accepted0 = accepted.value();

    const tech::Technology tech = tech::make_tech130();
    const cells::CellLibrary lib(tech);
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, tech.vdd);
    spice::TranOptions topt;
    topt.tstop = 2.5e-9;
    topt.dt = 2e-12;
    engine::GoldenCell cell(lib, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                            engine::LoadSpec{5e-15, 0, ""});
    const spice::TranResult res = cell.run(topt);

    EXPECT_EQ(solves.value() - solves0, 1);
    EXPECT_EQ(iters.value() - iters0, res.stats().newton_iters);
    EXPECT_EQ(accepted.value() - accepted0, res.stats().steps_accepted);
}

}  // namespace
