// Direct tests of the paper-faithful explicit integrator (eqs. (4)-(5)):
// initialization from the model DC state, explicit initial-state override
// (the knob that expresses history-dependent stack charge), internal-node
// trajectories, convergence in dt, and baseline-model behaviour.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/characterizer.h"
#include "core/explicit_sim.h"
#include "engine/scenarios.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm::core {
namespace {

struct Shared {
    tech::Technology tech = tech::make_tech130();
    cells::CellLibrary lib{tech};
    CsmModel nor;
    CsmModel nor_baseline;

    static const Shared& get() {
        static Shared s;
        return s;
    }

private:
    Shared() {
        const Characterizer chr(lib);
        CharOptions fast;
        fast.transient_caps = false;
        fast.grid_points = 11;
        nor = chr.characterize("NOR2", ModelKind::kMcsm, {"A", "B"}, fast);
        nor_baseline = chr.characterize("NOR2", ModelKind::kMisBaseline,
                                        {"A", "B"}, fast);
    }
};

TEST(ExplicitSim, InitializesFromModelDcState) {
    const Shared& s = Shared::get();
    // Constant inputs '10': the simulation must hold the DC state (out low,
    // N at Vdd) without drift.
    const auto a = wave::Waveform::constant(s.tech.vdd);
    const auto b = wave::Waveform::constant(0.0);
    ExplicitOptions opt;
    opt.tstop = 1e-9;
    opt.dt = 0.5e-12;
    const ExplicitResult r = simulate_explicit(s.nor, {a, b}, opt);
    EXPECT_NEAR(r.out.first_value(), 0.0, 0.05);
    EXPECT_NEAR(r.out.last_value(), 0.0, 0.05);
    ASSERT_EQ(r.internals.size(), 1u);
    EXPECT_NEAR(r.internals[0].first_value(), s.tech.vdd, 0.05);
    EXPECT_NEAR(r.internals[0].last_value(), s.tech.vdd, 0.05);
}

TEST(ExplicitSim, InitialStateOverrideControlsHistory) {
    const Shared& s = Shared::get();
    // '11' -> '00' final transition only, with the stack node seeded at the
    // two history levels: the Vdd seed must switch faster (the paper's
    // central claim, expressed directly through eq. (5) initial conditions).
    const auto edge =
        wave::piecewise_edges(s.tech.vdd, {{0.3e-9, 80e-12, 0.0}});
    ExplicitOptions opt;
    opt.tstop = 1.5e-9;
    opt.dt = 0.25e-12;
    opt.load_cap = 5e-15;

    opt.initial_state = {s.tech.vdd, 0.0};  // [N, out]: N precharged
    const ExplicitResult fast = simulate_explicit(s.nor, {edge, edge}, opt);
    opt.initial_state = {0.35, 0.0};  // N at ~|Vt,p|
    const ExplicitResult slow = simulate_explicit(s.nor, {edge, edge}, opt);

    const auto d_fast =
        wave::delay_50(edge, false, fast.out, true, s.tech.vdd, 0.1e-9);
    const auto d_slow =
        wave::delay_50(edge, false, slow.out, true, s.tech.vdd, 0.1e-9);
    ASSERT_TRUE(d_fast.has_value());
    ASSERT_TRUE(d_slow.has_value());
    EXPECT_LT(*d_fast, *d_slow);
    // The split is material (the stack effect), not numerical noise.
    EXPECT_GT((*d_slow - *d_fast) / *d_slow, 0.04);
}

TEST(ExplicitSim, InternalNodeRechargesAfterTransition) {
    const Shared& s = Shared::get();
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kSlow01, s.tech.vdd);
    ExplicitOptions opt;
    opt.tstop = 3.2e-9;
    opt.dt = 0.5e-12;
    opt.load_cap = 5e-15;
    const ExplicitResult r = simulate_explicit(s.nor, {stim.a, stim.b}, opt);
    // Before the final edge N sits near |Vt,p|; afterwards the pull-up
    // stack recharges it to Vdd.
    EXPECT_LT(r.internals[0].at(stim.t_final - 50e-12), 0.8);
    EXPECT_NEAR(r.internals[0].last_value(), s.tech.vdd, 0.05);
    EXPECT_NEAR(r.out.last_value(), s.tech.vdd, 0.05);
}

TEST(ExplicitSim, ConvergesAsDtShrinks) {
    const Shared& s = Shared::get();
    const engine::MisStimulus stim =
        engine::nor2_simultaneous_fall(s.tech.vdd, 0.5e-9);
    ExplicitOptions ref_opt;
    ref_opt.tstop = 1.5e-9;
    ref_opt.dt = 0.05e-12;
    ref_opt.load_cap = 5e-15;
    const ExplicitResult ref =
        simulate_explicit(s.nor, {stim.a, stim.b}, ref_opt);

    double prev_err = 1e9;
    for (const double dt : {2e-12, 1e-12, 0.5e-12}) {
        ExplicitOptions opt = ref_opt;
        opt.dt = dt;
        const ExplicitResult r =
            simulate_explicit(s.nor, {stim.a, stim.b}, opt);
        const double err = wave::rmse(ref.out, r.out, 0.4e-9, 1.4e-9);
        EXPECT_LT(err, prev_err + 1e-6) << dt;
        prev_err = err;
    }
    EXPECT_LT(prev_err, 0.01);  // 10 mV RMSE at dt = 0.5 ps
}

TEST(ExplicitSim, BaselineModelHasNoInternalTrajectory) {
    const Shared& s = Shared::get();
    const engine::MisStimulus stim =
        engine::nor2_simultaneous_fall(s.tech.vdd, 0.5e-9);
    ExplicitOptions opt;
    opt.tstop = 1.5e-9;
    opt.dt = 0.5e-12;
    opt.load_cap = 5e-15;
    const ExplicitResult r =
        simulate_explicit(s.nor_baseline, {stim.a, stim.b}, opt);
    EXPECT_TRUE(r.internals.empty());
    // It still produces a full-swing transition.
    EXPECT_NEAR(r.out.first_value(), 0.0, 0.05);
    EXPECT_NEAR(r.out.last_value(), s.tech.vdd, 0.05);
}

TEST(ExplicitSim, StateStaysWithinCharacterizedRange) {
    const Shared& s = Shared::get();
    // Very fast edges maximize Miller kick; the clamp must keep the state
    // inside [-dv, vdd+dv] where the tables are defined.
    const auto a = wave::piecewise_edges(s.tech.vdd, {{0.3e-9, 10e-12, 0.0}});
    const auto b = wave::piecewise_edges(s.tech.vdd, {{0.3e-9, 10e-12, 0.0}});
    ExplicitOptions opt;
    opt.tstop = 1e-9;
    opt.dt = 0.25e-12;
    opt.load_cap = 1e-15;
    const ExplicitResult r = simulate_explicit(s.nor, {a, b}, opt);
    EXPECT_GE(r.out.min_value(), -s.nor.dv_margin - 1e-12);
    EXPECT_LE(r.out.max_value(), s.tech.vdd + s.nor.dv_margin + 1e-12);
    EXPECT_GE(r.internals[0].min_value(), -s.nor.dv_margin - 1e-12);
    EXPECT_LE(r.internals[0].max_value(),
              s.tech.vdd + s.nor.dv_margin + 1e-12);
}

}  // namespace
}  // namespace mcsm::core
