// Cell-library tests: truth tables via DC analysis, internal stack node
// steady states (the paper's Section 2.2 observations), fanout helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "cells/cell_type.h"
#include "cells/fanout.h"
#include "cells/library.h"
#include "spice/dc_solver.h"
#include "tech/tech130.h"

namespace mcsm::cells {
namespace {

using spice::Circuit;
using spice::DcResult;
using spice::SourceSpec;

class CellFixture : public ::testing::Test {
protected:
    CellFixture() : tech_(tech::make_tech130()), lib_(tech_) {}

    // DC-solves the cell with the given input values; returns the solution
    // and records node ids in out_/instance_.
    DcResult solve_cell(const std::string& cell_name,
                        const std::vector<double>& input_volts) {
        const CellType& cell = lib_.get(cell_name);
        circuit_ = Circuit();
        const int vdd = circuit_.node("vdd");
        circuit_.add_vsource("VDD", vdd, Circuit::kGround,
                             SourceSpec::dc(tech_.vdd));
        std::unordered_map<std::string, int> conn;
        conn[kVdd] = vdd;
        conn[kGnd] = Circuit::kGround;
        out_ = circuit_.node("out");
        conn[kOut] = out_;
        for (std::size_t i = 0; i < cell.inputs().size(); ++i) {
            const int n = circuit_.node("in_" + cell.inputs()[i].name);
            conn[cell.inputs()[i].name] = n;
            circuit_.add_vsource("V" + cell.inputs()[i].name, n,
                                 Circuit::kGround,
                                 SourceSpec::dc(input_volts[i]));
        }
        instance_ = cell.instantiate(circuit_, "X0", conn);
        return spice::solve_dc(circuit_);
    }

    tech::Technology tech_;
    CellLibrary lib_;
    Circuit circuit_;
    CellInstance instance_;
    int out_ = -1;
};

TEST_F(CellFixture, AllCellsMatchTruthTablesAtDc) {
    for (const std::string& name : lib_.names()) {
        const CellType& cell = lib_.get(name);
        const std::size_t n_in = cell.input_count();
        for (unsigned pattern = 0; pattern < (1u << n_in); ++pattern) {
            std::vector<double> volts(n_in);
            std::vector<bool> bits(n_in);
            for (std::size_t i = 0; i < n_in; ++i) {
                bits[i] = (pattern >> i) & 1u;
                volts[i] = bits[i] ? tech_.vdd : 0.0;
            }
            const DcResult r = solve_cell(name, volts);
            // Plain bool array (std::vector<bool> has no contiguous data()).
            bool arr[4] = {false, false, false, false};
            for (std::size_t i = 0; i < n_in; ++i) arr[i] = bits[i];
            const bool logic = cell.eval_logic(std::span<const bool>(arr, n_in));
            const double vout = r.node_voltage(out_);
            if (logic) {
                EXPECT_GT(vout, 0.9 * tech_.vdd)
                    << name << " pattern=" << pattern;
            } else {
                EXPECT_LT(vout, 0.1 * tech_.vdd)
                    << name << " pattern=" << pattern;
            }
        }
    }
}

TEST_F(CellFixture, Nor2StackNodeHighWhenTopPmosOn) {
    // Inputs '10' (A=1, B=0): M4 (gate B) connects N to VDD.
    const DcResult r = solve_cell("NOR2", {tech_.vdd, 0.0});
    const double vn = r.node_voltage(instance_.node("N"));
    EXPECT_NEAR(vn, tech_.vdd, 0.03);
}

TEST_F(CellFixture, Nor2StackNodeAtBodyAffectedVtpWhenBottomPmosOn) {
    // Inputs '01' (A=0, B=1): N discharges through M3 toward OUT=0 and
    // settles near the body-affected |Vt,p| (paper Section 2.2).
    const DcResult r = solve_cell("NOR2", {0.0, tech_.vdd});
    const double vn = r.node_voltage(instance_.node("N"));
    EXPECT_GT(vn, 0.10);
    EXPECT_LT(vn, 0.55);
}

TEST_F(CellFixture, Nor2StackNodeStatesDiffer) {
    const DcResult r10 = solve_cell("NOR2", {tech_.vdd, 0.0});
    const double vn10 = r10.node_voltage(instance_.node("N"));
    const DcResult r01 = solve_cell("NOR2", {0.0, tech_.vdd});
    const double vn01 = r01.node_voltage(instance_.node("N"));
    // The two input histories leave very different internal-node voltages.
    EXPECT_GT(vn10 - vn01, 0.5);
}

TEST_F(CellFixture, Nand2StackNodeStates) {
    // '01' (A=0, B=1): bottom NMOS on, N pulled to ground.
    const DcResult r01 = solve_cell("NAND2", {0.0, tech_.vdd});
    const double vn01 = r01.node_voltage(instance_.node("N"));
    EXPECT_NEAR(vn01, 0.0, 0.03);
    // '10' (A=1, B=0): N charges through the top NMOS toward VDD - Vt,n.
    const DcResult r10 = solve_cell("NAND2", {tech_.vdd, 0.0});
    const double vn10 = r10.node_voltage(instance_.node("N"));
    EXPECT_GT(vn10, 0.6);
    EXPECT_LT(vn10, 1.1);
}

TEST_F(CellFixture, InputCapEstimateScalesWithDrive) {
    const double c1 = lib_.get("INV_X1").input_cap_estimate("A");
    const double c2 = lib_.get("INV_X2").input_cap_estimate("A");
    const double c4 = lib_.get("INV_X4").input_cap_estimate("A");
    EXPECT_NEAR(c2 / c1, 2.0, 0.01);
    EXPECT_NEAR(c4 / c1, 4.0, 0.01);
    // Order of magnitude: a unit inverter input is a fF-scale load.
    EXPECT_GT(c1, 0.2e-15);
    EXPECT_LT(c1, 20e-15);
}

TEST_F(CellFixture, InstantiateRejectsMissingPins) {
    const CellType& cell = lib_.get("NOR2");
    Circuit c;
    std::unordered_map<std::string, int> conn;
    conn[kVdd] = c.node("vdd");
    conn[kGnd] = Circuit::kGround;
    // OUT and inputs missing.
    EXPECT_THROW(cell.instantiate(c, "X", conn), ModelError);
}

TEST_F(CellFixture, FanoutAttachesReceivers) {
    Circuit c;
    const int vdd = c.node("vdd");
    const int net = c.node("net");
    c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(tech_.vdd));
    c.add_vsource("VNET", net, Circuit::kGround, SourceSpec::dc(0.0));
    const double cap = attach_fanout(c, lib_, "INV_X1", net, vdd, 4, "fo");
    EXPECT_NEAR(cap, 4.0 * receiver_input_cap(lib_, "INV_X1"), 1e-20);
    // 4 receivers x 2 transistors.
    int mosfets = 0;
    for (const auto& dev : c.devices())
        if (dynamic_cast<const spice::Mosfet*>(dev.get()) != nullptr) ++mosfets;
    EXPECT_EQ(mosfets, 8);
    // The circuit solves (receivers see a driven input).
    EXPECT_NO_THROW(spice::solve_dc(c));
}

}  // namespace
}  // namespace mcsm::cells
