// Randomized golden cross-validation of the serve layer over the full
// paper scenario space: a seeded sampler draws queries spanning 1/2/3-pin
// MIS arcs, linear and RC pi loads, and two Vdd/temperature corners, runs
// every query through both the LUT fast path and the exact CSM transient
// path, and asserts
//  * relative delay/slew agreement within max(5%, 2 ps), and
//  * bitwise-identical batch results across thread counts (including a
//    service that reloads the persisted surfaces instead of rebuilding).
// This is the regression gate that keeps future surface/schema changes
// honest: any interpolation scheme, knot default or effective-capacitance
// change that degrades the LUT path shows up here as a tolerance failure.
//
// Environment:
//   MCSM_GOLDEN_QUERIES=<n>  shrink the sample (and the arc set) for
//                            instrumented runs; the default 240-query run
//                            is the acceptance gate.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "cells/library.h"
#include "serve/repository.h"
#include "serve/timing_service.h"
#include "tech/tech130.h"

namespace mcsm::serve {
namespace {

namespace fs = std::filesystem;

constexpr double kPs = 1e-12;
constexpr double kFf = 1e-15;

// Tolerance of the acceptance gate: 5% relative or 2 ps absolute,
// whichever is larger.
double tolerance(double reference) {
    return std::max(0.05 * std::fabs(reference), 2e-12);
}

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("mcsm_golden_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
};

std::size_t query_budget() {
    if (const char* env = std::getenv("MCSM_GOLDEN_QUERIES")) {
        const long n = std::atol(env);
        if (n > 0) return static_cast<std::size_t>(n);
    }
    return 240;
}

// Small budgets (instrumented CI) switch to a cheaper arc set, a coarser
// 3-pin grid and knot-exact 3-pin queries; see sample_batch.
bool reduced_mode() { return query_budget() < 150; }

// The sampled scenario space. The full run draws from every row; the
// reduced (instrumented) run keeps one arc per pin count so the scenario
// classes stay covered while surface-build cost shrinks.
struct ArcChoice {
    const char* cell;
    std::vector<std::string> pins;
};

ServeOptions golden_options(const std::string& surface_dir,
                            std::size_t threads) {
    ServeOptions o;
    o.slew_knots = {40 * kPs,  75 * kPs,  130 * kPs,
                    200 * kPs, 280 * kPs, 360 * kPs};
    // Skew knots are normalized edge offsets; the dominance transition
    // lives inside |u| <~ 1 (with the strongest curvature in the MIS
    // valley core |u| < 0.4), the tails are (bi)linear.
    o.skew_knots = {-4.5,  -1.8, -1.4, -1.0, -0.7, -0.47, -0.25, -0.12,
                    0.0,   0.12, 0.25, 0.47, 0.7,  1.0,   1.4,   1.8,
                    4.5};
    // The extra 2.2 fF knot resolves the concave low-load region (slew vs
    // load flattens where the cell's intrinsic cap dominates).
    o.load_knots = {1 * kFf, 2.2 * kFf, 4.7 * kFf, 10 * kFf, 24 * kFf};
    o.slew_knots_mis3 = {55 * kPs, 95 * kPs, 140 * kPs, 195 * kPs,
                         260 * kPs};
    o.skew_knots_mis3 = {-1.2, -0.85, -0.55, -0.32, -0.15, 0.0,
                         0.15, 0.32,  0.55,  0.85,  1.2};
    o.skew_pair_knots_mis3 = {-2.1, -1.1, -0.55, -0.35, -0.22, 0.0,
                              0.22, 0.35,  0.55,  1.1,   2.1};
    o.load_knots_mis3 = {1 * kFf, 6 * kFf, 24 * kFf};
    if (reduced_mode()) {
        // Coarse 3-pin grid: queries sample it knot-exactly.
        o.slew_knots_mis3 = {60 * kPs, 120 * kPs, 240 * kPs};
        o.skew_knots_mis3 = {-1.2, -0.4, 0.0, 0.4, 1.2};
        o.skew_pair_knots_mis3 = {-1.6, -0.5, 0.0, 0.5, 1.6};
        o.load_knots_mis3 = {1.5 * kFf, 8 * kFf, 22 * kFf};
    }
    o.dt = 4e-12;
    o.settle = 1.2e-9;
    o.threads = threads;
    o.surface_dir = surface_dir;
    return o;
}

class ServeGolden : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        rig_ = new Rig();
    }
    static void TearDownTestSuite() {
        delete rig_;
        rig_ = nullptr;
    }

    struct Rig {
        tech::Technology tech = tech::make_tech130();
        cells::CellLibrary lib{tech};
        TempDir surfaces{"surfaces"};
        std::unique_ptr<ModelRepository> repo;
        std::unique_ptr<TimingService> service;
        std::vector<TimingQuery> batch;

        Rig() {
            RepositoryOptions ropt;  // in-memory store; characterize on miss
            ropt.char_options.transient_caps = false;
            ropt.char_options.grid_points = 6;
            ropt.char_options.cin_points = 5;
            ropt.char_options_mis3.transient_caps = false;
            ropt.char_options_mis3.grid_points = 4;
            ropt.char_options_mis3.cin_points = 5;
            repo = std::make_unique<ModelRepository>(&lib, ropt);
            service = std::make_unique<TimingService>(
                *repo, golden_options(surfaces.str(), 0));
            batch = sample_batch(query_budget());
        }

        // Seeded sampler over the expanded scenario space. Sampling ranges
        // stay inside the surface knot hulls (the LUT clamps outside them,
        // which is a coverage decision, not an accuracy one).
        std::vector<TimingQuery> sample_batch(std::size_t n) const {
            const bool reduced = n < 150;
            const std::vector<ArcChoice> one_pin =
                reduced ? std::vector<ArcChoice>{{"INV_X1", {"A"}}}
                        : std::vector<ArcChoice>{{"INV_X1", {"A"}},
                                                 {"INV_X4", {"A"}},
                                                 {"NOR2", {"B"}}};
            const std::vector<ArcChoice> two_pin =
                reduced ? std::vector<ArcChoice>{{"NOR2", {"A", "B"}}}
                        : std::vector<ArcChoice>{{"NOR2", {"A", "B"}},
                                                 {"NAND2", {"A", "B"}}};
            const std::vector<ArcChoice> three_pin{{"NAND3", {"A", "B", "C"}}};

            std::mt19937 gen(20260728u);
            auto uniform = [&](double lo, double hi) {
                return std::uniform_real_distribution<double>(lo, hi)(gen);
            };
            auto pick = [&](const std::vector<ArcChoice>& arcs) {
                return arcs[std::uniform_int_distribution<std::size_t>(
                    0, arcs.size() - 1)(gen)];
            };

            // The reduced (instrumented-CI) run samples 3-pin queries AT
            // surface knot coordinates: that exercises the whole 3-pin
            // pipeline -- 6-D characterization, surface build, persistence,
            // threading -- while allowing a coarse 3-pin grid, because at a
            // knot the LUT reproduces the measured transient regardless of
            // grid density. Off-knot 3-pin interpolation accuracy is the
            // full run's job.
            const ServeOptions opts = golden_options("", 0);

            std::vector<TimingQuery> batch;
            batch.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                TimingQuery q;
                // ~30% 1-pin, ~45% 2-pin, ~25% 3-pin.
                const unsigned cls = std::uniform_int_distribution<unsigned>(
                    0, 19)(gen);
                const bool mis3 = cls >= 15;
                const ArcChoice arc = mis3          ? pick(three_pin)
                                      : (cls >= 6) ? pick(two_pin)
                                                   : pick(one_pin);
                q.cell = arc.cell;
                q.pins = arc.pins;
                auto pick_knot = [&](const std::vector<double>& knots) {
                    return knots[std::uniform_int_distribution<std::size_t>(
                        0, knots.size() - 1)(gen)];
                };
                if (mis3 && reduced) {
                    for (std::size_t p = 0; p < q.pins.size(); ++p)
                        q.slews.push_back(pick_knot(opts.slew_knots_mis3));
                } else {
                    const double slew_lo = mis3 ? 65 * kPs : 45 * kPs;
                    const double slew_hi = mis3 ? 250 * kPs : 340 * kPs;
                    q.slews.push_back(uniform(slew_lo, slew_hi));
                    for (std::size_t p = 1; p < q.pins.size(); ++p) {
                        // Per-pair slew ratios are capped at 3.5: a very
                        // slow and a very fast edge arriving together
                        // produce two-phase output transitions whose
                        // 10-90% span is not a smooth function of any
                        // surface axis (dedicated treatment tracked in
                        // ROADMAP). Within ratio 3.5 the surfaces hold
                        // the 5% budget.
                        const double lo =
                            std::max(slew_lo, q.slews[0] / 3.5);
                        const double hi =
                            std::min(slew_hi, q.slews[0] * 3.5);
                        q.slews.push_back(uniform(lo, hi));
                    }
                }
                if (q.pins.size() > 1) {
                    // Sample the normalized edge offsets (the surface's
                    // skew coordinates) inside the knot hull, then convert
                    // to the edge-start skews the query carries. The
                    // absolute offset is additionally capped so exact-path
                    // windows stay short. Knot-exact 3-pin sampling picks
                    // a (skew_max, skew_diff) knot pair and inverts the
                    // rotation, exactly as the surface build does.
                    const double u_range = mis3 ? 1.05 : 4.2;
                    const double delta_cap = mis3 ? 400 * kPs : 350 * kPs;
                    q.skews.assign(q.pins.size(), 0.0);
                    double u[3] = {0.0, 0.0, 0.0};
                    if (mis3 && reduced) {
                        const double m = pick_knot(opts.skew_knots_mis3);
                        const double d =
                            pick_knot(opts.skew_pair_knots_mis3);
                        u[1] = d >= 0.0 ? m : m + d;
                        u[2] = d >= 0.0 ? m - d : m;
                    } else {
                        for (std::size_t p = 1; p < q.pins.size(); ++p)
                            u[p] = uniform(-u_range, u_range);
                    }
                    for (std::size_t p = 1; p < q.pins.size(); ++p) {
                        const double scale =
                            0.5 * (q.slews[0] + q.slews[p]);
                        double delta = u[p] * scale;
                        if (!(mis3 && reduced))
                            delta = std::clamp(delta, -delta_cap, delta_cap);
                        q.skews[p] =
                            delta - 0.5 * (q.slews[p] - q.slews[0]);
                    }
                }
                // 3-pin arcs keep one direction (rising inputs -> the NMOS
                // stack discharge, THE stack-effect arc) so only one
                // multi-thousand-transient surface gets built.
                q.inputs_rise = mis3 ? true : (gen() & 1u) != 0;
                // 3-pin arcs stay at the nominal corner (their surface is
                // the expensive one); 1/2-pin arcs split across corners.
                if (!mis3 && (gen() & 1u) != 0)
                    q.corner = Corner{1.08, 85.0};
                // ~40% pi loads; Ctot stays inside the load knot hull
                // (knot-exact 3-pin queries use knot-exact linear loads).
                if (mis3 && reduced) {
                    q.load_cap = pick_knot(opts.load_knots_mis3);
                } else if (gen() % 5 < 2) {
                    q.load_cap = uniform(0.5 * kFf, 3 * kFf);
                    q.c_near = uniform(0.5 * kFf, 4 * kFf);
                    q.c_far = uniform(1 * kFf, 10 * kFf);
                    q.r_wire = uniform(150.0, 1500.0);
                } else {
                    q.load_cap = uniform(1.2 * kFf, 20 * kFf);
                }
                batch.push_back(std::move(q));
            }
            return batch;
        }
    };

    static Rig* rig_;
};

ServeGolden::Rig* ServeGolden::rig_ = nullptr;

// --- the cross-validation gate -------------------------------------------

TEST_F(ServeGolden, LutPathTracksExactTransientAcrossScenarioSpace) {
    const std::vector<TimingQuery>& batch = rig_->batch;
    if (std::getenv("MCSM_GOLDEN_QUERIES") == nullptr) {
        ASSERT_GE(batch.size(), 200u) << "acceptance gate needs >= 200";
    }

    const std::vector<TimingResult> lut = rig_->service->run_batch(batch);

    std::vector<TimingQuery> exact_batch = batch;
    for (TimingQuery& q : exact_batch) q.exact = true;
    const std::vector<TimingResult> exact =
        rig_->service->run_batch(exact_batch);

    double worst_delay = 0.0;  // error / tolerance, max over the batch
    double worst_slew = 0.0;
    // (err/tol, "what") of every query, so the summary can always name the
    // top offenders even when a CI log truncates individual failures.
    std::vector<std::pair<double, std::string>> offenders;
    std::size_t n_pi = 0;
    std::size_t n_corner = 0;
    std::size_t n_pins[3] = {0, 0, 0};
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(lut[i].valid) << i << ": " << lut[i].error;
        ASSERT_TRUE(exact[i].valid) << i << ": " << exact[i].error;
        EXPECT_EQ(lut[i].path, ResultPath::kLut) << i;
        EXPECT_EQ(exact[i].path, ResultPath::kTransient) << i;

        const double d_err = std::fabs(lut[i].delay - exact[i].delay);
        const double s_err = std::fabs(lut[i].slew - exact[i].slew);
        const double d_tol = tolerance(exact[i].delay);
        const double s_tol = tolerance(exact[i].slew);
        const auto describe = [&](const TimingQuery& q) {
            std::string s = q.cell;
            s += q.inputs_rise ? " rise" : " fall";
            s += " slews[";
            for (double v : q.slews)
                s += std::to_string(v / kPs).substr(0, 5) + " ";
            s += "] skews[";
            for (double v : q.skews)
                s += std::to_string(v / kPs).substr(0, 6) + " ";
            s += "] load " + std::to_string(q.load_cap / kFf).substr(0, 4);
            if (q.has_pi_load())
                s += " pi(" + std::to_string(q.c_near / kFf).substr(0, 4) +
                     "," + std::to_string(q.r_wire).substr(0, 6) + "," +
                     std::to_string(q.c_far / kFf).substr(0, 4) + ")";
            if (!q.corner.nominal()) s += " @" + q.corner.tag();
            return s;
        };
        EXPECT_LE(d_err, d_tol)
            << "query " << i << " [" << describe(batch[i]) << "]: delay "
            << lut[i].delay / kPs << " ps vs exact "
            << exact[i].delay / kPs << " ps";
        EXPECT_LE(s_err, s_tol)
            << "query " << i << " [" << describe(batch[i]) << "]: slew "
            << lut[i].slew / kPs << " ps vs exact " << exact[i].slew / kPs
            << " ps";
        worst_delay = std::max(worst_delay, d_err / d_tol);
        worst_slew = std::max(worst_slew, s_err / s_tol);
        offenders.emplace_back(d_err / d_tol,
                               "delay q" + std::to_string(i) + " " +
                                   describe(batch[i]));
        offenders.emplace_back(s_err / s_tol,
                               "slew q" + std::to_string(i) + " " +
                                   describe(batch[i]));
        n_pi += batch[i].has_pi_load() ? 1 : 0;
        n_corner += batch[i].corner.nominal() ? 0 : 1;
        ++n_pins[batch[i].pins.size() - 1];
    }

    // The sampler must actually have spanned the space (guards against a
    // future edit quietly dropping a scenario class).
    EXPECT_GT(n_pins[0], 0u);
    EXPECT_GT(n_pins[1], 0u);
    EXPECT_GT(n_pins[2], 0u);
    EXPECT_GT(n_pi, 0u);
    EXPECT_GT(n_corner, 0u);

    std::printf(
        "[golden] %zu queries (%zu/%zu/%zu per pin count, %zu pi, %zu "
        "corner): worst delay err %.0f%% of tol, worst slew err %.0f%% of "
        "tol\n",
        batch.size(), n_pins[0], n_pins[1], n_pins[2], n_pi, n_corner,
        100.0 * worst_delay, 100.0 * worst_slew);
    std::partial_sort(offenders.begin(),
                      offenders.begin() +
                          std::min<std::size_t>(8, offenders.size()),
                      offenders.end(), std::greater<>());
    for (std::size_t i = 0; i < std::min<std::size_t>(8, offenders.size());
         ++i)
        std::printf("[golden]   %3.0f%% %s\n", 100.0 * offenders[i].first,
                    offenders[i].second.c_str());
}

// --- determinism across thread counts (and across surface reloads) -------

TEST_F(ServeGolden, BatchesAreBitwiseDeterministicAcrossThreadCounts) {
    // Mixed batch: every LUT query plus a slice of exact-path twins.
    std::vector<TimingQuery> mixed = rig_->batch;
    for (std::size_t i = 0; i < rig_->batch.size(); i += 8) {
        TimingQuery q = rig_->batch[i];
        q.exact = true;
        mixed.push_back(std::move(q));
    }

    // The reference comes from the shared service (default thread count,
    // surfaces built in-process). The two probes run at forced thread
    // counts and share the persisted surface directory, so they reload the
    // stored tables instead of rebuilding -- which makes this also a
    // bit-exactness check of the surface store round trip.
    const std::vector<TimingResult> ref = rig_->service->run_batch(mixed);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        TimingService probe(*rig_->repo,
                            golden_options(rig_->surfaces.str(), threads));
        const std::vector<TimingResult> got = probe.run_batch(mixed);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            ASSERT_EQ(got[i].valid, ref[i].valid) << i;
            EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].delay),
                      std::bit_cast<std::uint64_t>(ref[i].delay))
                << "threads=" << threads << " query " << i;
            EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].slew),
                      std::bit_cast<std::uint64_t>(ref[i].slew))
                << "threads=" << threads << " query " << i;
        }
        EXPECT_GT(probe.surface_load_count(), 0u)
            << "probe was expected to reload persisted surfaces";
    }
}

}  // namespace
}  // namespace mcsm::serve
