// Cross-cell model validation: for every multi-input cell in the library,
// characterize an MCSM over a pin pair and check that the model's own DC
// fixed point (dc_state) reproduces the golden transistor-level DC solution
// at every consistent input corner. This is the strongest cheap invariant a
// CSM must satisfy: the current tables' zero set encodes the cell's static
// behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "cells/cell_type.h"
#include "core/characterizer.h"
#include "spice/dc_solver.h"
#include "tech/tech130.h"

namespace mcsm::core {
namespace {

struct CellCase {
    const char* cell;
    const char* pin_a;
    const char* pin_b;
};

class CellModelDc : public ::testing::TestWithParam<CellCase> {
protected:
    CellModelDc() : tech_(tech::make_tech130()), lib_(tech_) {}

    // Golden DC output voltage with the switching pins at (va, vb) and the
    // remaining pins at their non-controlling values.
    double golden_out(const cells::CellType& cell, const std::string& pa,
                      const std::string& pb, double va, double vb) {
        spice::Circuit c;
        const int vdd = c.node("vdd");
        c.add_vsource("VDD", vdd, spice::Circuit::kGround,
                      spice::SourceSpec::dc(tech_.vdd));
        std::unordered_map<std::string, int> conn;
        conn[cells::kVdd] = vdd;
        conn[cells::kGnd] = spice::Circuit::kGround;
        const int out = c.node("out");
        conn[cells::kOut] = out;
        for (const cells::PinInfo& pin : cell.inputs()) {
            const int n = c.node("in_" + pin.name);
            conn[pin.name] = n;
            double v = pin.non_controlling;
            if (pin.name == pa) v = va;
            if (pin.name == pb) v = vb;
            c.add_vsource("V" + pin.name, n, spice::Circuit::kGround,
                          spice::SourceSpec::dc(v));
        }
        cell.instantiate(c, "DUT", conn);
        return spice::solve_dc(c).node_voltage(out);
    }

    tech::Technology tech_;
    cells::CellLibrary lib_;
};

TEST_P(CellModelDc, DcStateMatchesGoldenAtEveryCorner) {
    const CellCase& cc = GetParam();
    const cells::CellType& cell = lib_.get(cc.cell);
    const Characterizer chr(lib_);
    CharOptions opt;
    opt.transient_caps = false;
    // 5-D models (two internals) get a smaller grid to stay test-fast.
    opt.grid_points = cell.internal_nodes().size() >= 2 ? 6 : 9;
    const CsmModel model = chr.characterize(
        cc.cell, ModelKind::kMcsm, {cc.pin_a, cc.pin_b}, opt);

    for (const double va : {0.0, tech_.vdd}) {
        for (const double vb : {0.0, tech_.vdd}) {
            const double golden =
                golden_out(cell, cc.pin_a, cc.pin_b, va, vb);
            const double pins[2] = {va, vb};
            const auto state =
                model.dc_state(std::span<const double>(pins, 2));
            const double model_out = state.back();
            EXPECT_NEAR(model_out, golden, 0.08)
                << cc.cell << " corner (" << va << "," << vb << ")";
        }
    }
}

TEST_P(CellModelDc, StableCornersCarryNoCurrent) {
    const CellCase& cc = GetParam();
    const cells::CellType& cell = lib_.get(cc.cell);
    const Characterizer chr(lib_);
    CharOptions opt;
    opt.transient_caps = false;
    opt.grid_points = cell.internal_nodes().size() >= 2 ? 6 : 9;
    const CsmModel model = chr.characterize(
        cc.cell, ModelKind::kMcsm, {cc.pin_a, cc.pin_b}, opt);

    // At the model's own DC fixed point the residual currents must be
    // negligible compared to the drive currents in the tables.
    const double unit = model.i_out.max_abs();
    for (const double va : {0.0, tech_.vdd}) {
        for (const double vb : {0.0, tech_.vdd}) {
            const double pins[2] = {va, vb};
            const auto state =
                model.dc_state(std::span<const double>(pins, 2));
            std::vector<double> v{va, vb};
            v.insert(v.end(), state.begin(), state.end());
            EXPECT_LT(std::fabs(model.io(v)), 2e-5 * unit)
                << cc.cell << " corner (" << va << "," << vb << ")";
            for (std::size_t j = 0; j < model.internal_count(); ++j)
                EXPECT_LT(std::fabs(model.in(j, v)), 2e-5 * unit);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CellModelDc,
    ::testing::Values(CellCase{"NOR2", "A", "B"},
                      CellCase{"NAND2", "A", "B"},
                      CellCase{"NOR3", "A", "B"},
                      CellCase{"NAND3", "A", "B"},
                      CellCase{"AOI21", "A", "C"},
                      CellCase{"OAI21", "A", "C"}),
    [](const ::testing::TestParamInfo<CellCase>& info) {
        return std::string(info.param.cell) + "_" + info.param.pin_a +
               info.param.pin_b;
    });

}  // namespace
}  // namespace mcsm::core
