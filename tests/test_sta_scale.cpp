// Netlist-scale STA validation: a deterministic pseudo-random layered
// network of ~30 INV/NAND2/NOR2 instances, evaluated by the MCSM waveform
// STA and by one flat transistor-level transient. Exercises topological
// ordering, multi-fanout receiver loading, and error accumulation across
// five logic levels.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/characterizer.h"
#include "sta/golden_flat.h"
#include "sta/nldm.h"
#include "sta/wave_sta.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm::sta {
namespace {

class StaScale : public ::testing::Test {
protected:
    StaScale() : tech_(tech::make_tech130()), lib_(tech_) {}

    // Builds a layered DAG: `width` nets per layer, `depth` layers; each
    // gate picks its cell type and inputs from the previous layer using a
    // seeded generator, so the netlist is random-looking but reproducible.
    GateNetlist make_network(int width, int depth, unsigned seed) {
        std::mt19937 gen(seed);
        std::uniform_int_distribution<int> cell_pick(0, 2);

        GateNetlist nl;
        const double t_edge = 1.0e-9;
        std::vector<std::string> prev;
        for (int w = 0; w < width; ++w) {
            const std::string net = "pi" + std::to_string(w);
            // Alternate edge directions across primary inputs.
            const bool rising = (w % 2) == 0;
            nl.add_primary_input(
                net, wave::piecewise_edges(
                         rising ? 0.0 : tech_.vdd,
                         {{t_edge + 20e-12 * w, 100e-12,
                           rising ? tech_.vdd : 0.0}}));
            prev.push_back(net);
        }

        int uid = 0;
        for (int layer = 0; layer < depth; ++layer) {
            std::vector<std::string> cur;
            for (int w = 0; w < width; ++w) {
                // Built via append() rather than operator+: GCC 12's
                // -Wrestrict false-positives on `const char* + string&&`
                // at -O2 (PR105329), and the tree builds with -Werror.
                std::string out = "n";
                out += std::to_string(layer);
                out += '_';
                out += std::to_string(w);
                std::string name = "u";
                name += std::to_string(uid++);
                std::uniform_int_distribution<std::size_t> in_pick(
                    0, prev.size() - 1);
                const int kind = cell_pick(gen);
                if (kind == 0) {
                    nl.add_instance(
                        {name, "INV_X1", {{"A", prev[in_pick(gen)]},
                                          {"OUT", out}}});
                } else {
                    const std::string cell = kind == 1 ? "NAND2" : "NOR2";
                    std::string a = prev[in_pick(gen)];
                    std::string b = prev[in_pick(gen)];
                    if (a == b) b = prev[(in_pick(gen) + 1) % prev.size()];
                    nl.add_instance(
                        {name, cell, {{"A", a}, {"B", b}, {"OUT", out}}});
                }
                nl.set_wire_cap(out, 1e-15);
                cur.push_back(out);
            }
            prev = cur;
        }
        return nl;
    }

    tech::Technology tech_;
    cells::CellLibrary lib_;
};

TEST_F(StaScale, ThirtyGateNetworkTracksGoldenFlat) {
    const GateNetlist nl = make_network(/*width=*/6, /*depth=*/5,
                                        /*seed=*/20260610u);
    ASSERT_EQ(nl.instances().size(), 30u);

    const core::Characterizer chr(lib_);
    core::CharOptions fast;
    fast.transient_caps = false;
    fast.grid_points = 9;
    const core::CsmModel inv =
        chr.characterize("INV_X1", core::ModelKind::kSis, {"A"}, fast);
    const core::CsmModel nand =
        chr.characterize("NAND2", core::ModelKind::kMcsm, {"A", "B"}, fast);
    const core::CsmModel nor =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, fast);

    WaveformSta sta(nl, {{"INV_X1", &inv}, {"NAND2", &nand}, {"NOR2", &nor}});
    WaveStaOptions wopt;
    wopt.tstop = 4.5e-9;
    const auto model_nets = sta.run(wopt);

    const auto golden_nets = run_golden_flat(nl, lib_, 4.5e-9);

    // Every internal net must match the flat golden run in shape. Waveform
    // STA evaluates each stage in isolation with static receiver caps, so a
    // few percent of Vdd accumulated over five levels is the expected
    // envelope.
    double worst_rmse = 0.0;
    std::string worst_net;
    for (const Instance& inst : nl.instances()) {
        const std::string& net = inst.conn.at("OUT");
        const double nrmse = wave::rmse_normalized(
            golden_nets.at(net), model_nets.at(net), 0.9e-9, 4.4e-9,
            tech_.vdd);
        if (nrmse > worst_rmse) {
            worst_rmse = nrmse;
            worst_net = net;
        }
    }
    EXPECT_LT(worst_rmse, 0.08) << "worst net: " << worst_net;

    // Last-layer arrivals: compare the final settling values (logic
    // correctness of the whole network) on every output net.
    for (int w = 0; w < 6; ++w) {
        const std::string net = "n4_" + std::to_string(w);
        EXPECT_NEAR(golden_nets.at(net).last_value(),
                    model_nets.at(net).last_value(), 0.1)
            << net;
    }
}

}  // namespace
}  // namespace mcsm::sta
