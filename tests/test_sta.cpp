// STA layer tests: netlist topology, NLDM characterization/propagation,
// waveform-propagation STA vs the flat golden simulation, and the
// NLDM-vs-CSM comparison on MIS inputs that motivates the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "core/characterizer.h"
#include "sta/golden_flat.h"
#include "sta/netlist.h"
#include "sta/nldm.h"
#include "sta/wave_sta.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm::sta {
namespace {

class StaFixture : public ::testing::Test {
protected:
    StaFixture() : tech_(tech::make_tech130()), lib_(tech_) {}

    // A 3-stage chain: in -> INV -> n1 -> NOR2(A; B tied via 2nd PI) -> n2
    // -> INV -> out.
    GateNetlist make_chain(double t_edge = 1.0e-9) {
        GateNetlist nl;
        nl.add_primary_input(
            "in", wave::piecewise_edges(tech_.vdd, {{t_edge, 100e-12, 0.0}}));
        nl.add_primary_input("b_const_low", wave::Waveform::constant(0.0));
        nl.add_instance({"u1", "INV_X1", {{"A", "in"}, {"OUT", "n1"}}});
        nl.add_instance(
            {"u2", "NOR2",
             {{"A", "n1"}, {"B", "b_const_low"}, {"OUT", "n2"}}});
        nl.add_instance({"u3", "INV_X1", {{"A", "n2"}, {"OUT", "out"}}});
        nl.set_wire_cap("n1", 1e-15);
        nl.set_wire_cap("n2", 1e-15);
        nl.set_wire_cap("out", 4e-15);
        return nl;
    }

    tech::Technology tech_;
    cells::CellLibrary lib_;
};

TEST_F(StaFixture, TopologicalOrderRespectsDependencies) {
    const GateNetlist nl = make_chain();
    const auto order = nl.topological_order();
    ASSERT_EQ(order.size(), 3u);
    // u1 before u2 before u3.
    std::vector<std::size_t> pos(3);
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    EXPECT_LT(pos[0], pos[1]);
    EXPECT_LT(pos[1], pos[2]);
}

TEST_F(StaFixture, TopologicalOrderRejectsCycles) {
    GateNetlist nl;
    nl.add_primary_input("in", wave::Waveform::constant(0.0));
    nl.add_instance({"u1", "NOR2",
                     {{"A", "in"}, {"B", "y"}, {"OUT", "x"}}});
    nl.add_instance({"u2", "INV_X1", {{"A", "x"}, {"OUT", "y"}}});
    EXPECT_THROW(nl.topological_order(), ModelError);
}

TEST_F(StaFixture, DriverAndSinkLookup) {
    const GateNetlist nl = make_chain();
    EXPECT_EQ(nl.driver_of("n1"), 0u);
    EXPECT_EQ(nl.driver_of("out"), 2u);
    EXPECT_THROW(nl.driver_of("in"), ModelError);
    const auto sinks = nl.sinks_of("n1");
    ASSERT_EQ(sinks.size(), 1u);
    EXPECT_EQ(sinks[0].instance, 1u);
    EXPECT_EQ(sinks[0].pin, "A");
}

TEST_F(StaFixture, NldmTablesAreSane) {
    const NldmLibrary nldm(lib_, {"INV_X1"});
    const NldmCell& inv = nldm.cell("INV_X1");
    EXPECT_GT(inv.pin_cap, 0.5e-15);
    const NldmArc& arc = inv.arc("A", true);
    // Delay grows with load at fixed slew and with slew at fixed load.
    const double q_small[2] = {50e-12, 2e-15};
    const double q_big_load[2] = {50e-12, 30e-15};
    const double q_big_slew[2] = {350e-12, 2e-15};
    const std::span<const double> s1(q_small, 2);
    const std::span<const double> s2(q_big_load, 2);
    const std::span<const double> s3(q_big_slew, 2);
    EXPECT_GT(arc.delay.at(s2), arc.delay.at(s1));
    EXPECT_GT(arc.delay.at(s3), arc.delay.at(s1));
    // Output slew grows with load.
    EXPECT_GT(arc.out_slew.at(s2), arc.out_slew.at(s1));
}

TEST_F(StaFixture, NldmStaMatchesGoldenOnCleanRamps) {
    const GateNetlist nl = make_chain();
    const NldmLibrary nldm(lib_, {"INV_X1", "NOR2"});
    const auto arrivals = run_nldm_sta(nl, nldm, tech_.vdd);
    ASSERT_TRUE(arrivals.count("out"));

    const auto golden = run_golden_flat(nl, lib_, 4e-9);
    const wave::Waveform& g_out = golden.at("out");
    const bool rising = arrivals.at("out").rising;
    const auto g_t50 = wave::crossing(g_out, tech_.vdd, 0.5, rising, 0.9e-9);
    ASSERT_TRUE(g_t50.has_value());
    // Clean saturated ramps are NLDM's home turf: a few ps agreement.
    EXPECT_NEAR(arrivals.at("out").t50, *g_t50, 8e-12);
}

TEST_F(StaFixture, WaveformStaMatchesGoldenFlat) {
    const core::Characterizer chr(lib_);
    core::CharOptions fast;
    fast.transient_caps = false;
    fast.grid_points = 11;
    const core::CsmModel inv =
        chr.characterize("INV_X1", core::ModelKind::kSis, {"A"}, fast);
    core::CharOptions nopt = fast;
    nopt.grid_points = 9;
    const core::CsmModel nor =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, nopt);

    const GateNetlist nl = make_chain();
    WaveformSta sta(nl, {{"INV_X1", &inv}, {"NOR2", &nor}});
    WaveStaOptions wopt;
    wopt.tstop = 4e-9;
    const auto nets = sta.run(wopt);

    const auto golden = run_golden_flat(nl, lib_, 4e-9);
    for (const std::string net : {"n1", "n2", "out"}) {
        const double nrmse = wave::rmse_normalized(
            golden.at(net), nets.at(net), 0.8e-9, 3.5e-9, tech_.vdd);
        EXPECT_LT(nrmse, 0.05) << net;
    }
    // End-to-end 50% arrival agreement. The chain inverts three times, so
    // a falling primary input emerges as a rising 'out'.
    const auto g50 =
        wave::crossing(golden.at("out"), tech_.vdd, 0.5, true, 0.9e-9);
    const auto m50 =
        wave::crossing(nets.at("out"), tech_.vdd, 0.5, true, 0.9e-9);
    ASSERT_TRUE(g50.has_value());
    ASSERT_TRUE(m50.has_value());
    EXPECT_NEAR(*m50, *g50, 6e-12);
}

TEST_F(StaFixture, WaveformStaBitwiseDeterministicAcrossThreads) {
    // A netlist with repeated (cell, fanout-signature) stages, so the
    // per-worker fixture cache actually reuses circuits — within levels and
    // across them. Reused fixtures drop their frozen LU pivot order, so
    // every stage must come out bit-identical no matter how many workers
    // run or which worker served which stage.
    const core::Characterizer chr(lib_);
    core::CharOptions fast;
    fast.transient_caps = false;
    fast.grid_points = 7;
    const core::CsmModel inv =
        chr.characterize("INV_X1", core::ModelKind::kSis, {"A"}, fast);
    const core::CsmModel nor =
        chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"}, fast);

    GateNetlist nl;
    nl.add_primary_input(
        "in", wave::piecewise_edges(tech_.vdd, {{0.4e-9, 90e-12, 0.0}}));
    constexpr int kFan = 4;
    for (int k = 0; k < kFan; ++k) {
        const std::string a = "a" + std::to_string(k);
        const std::string b = "b" + std::to_string(k);
        nl.add_instance({"u" + std::to_string(k), "INV_X1",
                         {{"A", "in"}, {"OUT", a}}});
        nl.add_instance({"v" + std::to_string(k), "INV_X1",
                         {{"A", a}, {"OUT", b}}});
        nl.set_wire_cap(a, 1e-15);
        nl.set_wire_cap(b, 1.5e-15);
    }
    for (int k = 0; k < kFan; ++k) {
        const std::string c = "c" + std::to_string(k);
        nl.add_instance({"w" + std::to_string(k), "NOR2",
                         {{"A", "b" + std::to_string(k)},
                          {"B", "b" + std::to_string((k + 1) % kFan)},
                          {"OUT", c}}});
        nl.set_wire_cap(c, 2e-15);
    }

    WaveformSta sta(nl, {{"INV_X1", &inv}, {"NOR2", &nor}});
    WaveStaOptions wopt;
    wopt.tstop = 2.5e-9;
    wopt.dt = 2e-12;

    wopt.threads = 1;
    const auto serial = sta.run(wopt);
    for (std::size_t threads : {2u, 5u}) {
        wopt.threads = threads;
        const auto par = sta.run(wopt);
        ASSERT_EQ(par.size(), serial.size());
        for (const auto& [net, w] : serial) {
            const auto it = par.find(net);
            ASSERT_NE(it, par.end()) << net;
            ASSERT_EQ(it->second.size(), w.size()) << net;
            for (std::size_t s = 0; s < w.size(); ++s)
                ASSERT_EQ(it->second.value(s), w.value(s))
                    << net << " sample " << s << " threads " << threads;
        }
    }
}

TEST_F(StaFixture, NldmUnderestimatesMisDelayCsmDoesNot) {
    // The paper's motivation: when both inputs of a stacked gate switch
    // together, SIS NLDM (which characterizes each arc with the other input
    // fully on) underestimates the delay. The canonical case is the NAND2
    // NMOS stack with both inputs rising: the SIS arc assumes the series
    // transistor is already conducting, but under MIS it is still turning
    // on.
    const double t_edge = 1.0e-9;
    GateNetlist nl;
    nl.add_primary_input(
        "a", wave::piecewise_edges(0.0, {{t_edge, 100e-12, tech_.vdd}}));
    nl.add_primary_input(
        "b", wave::piecewise_edges(0.0, {{t_edge, 100e-12, tech_.vdd}}));
    nl.add_instance({"u1", "NAND2", {{"A", "a"}, {"B", "b"}, {"OUT", "y"}}});
    nl.set_wire_cap("y", 4e-15);

    const auto golden = run_golden_flat(nl, lib_, 3e-9);
    const auto g50 =
        wave::crossing(golden.at("y"), tech_.vdd, 0.5, false, t_edge);
    ASSERT_TRUE(g50.has_value());

    const NldmLibrary nldm(lib_, {"NAND2"});
    const auto arrivals = run_nldm_sta(nl, nldm, tech_.vdd);
    const double nldm_err = std::fabs(arrivals.at("y").t50 - *g50);

    const core::Characterizer chr(lib_);
    core::CharOptions nopt;
    nopt.transient_caps = false;
    nopt.grid_points = 9;
    const core::CsmModel nand =
        chr.characterize("NAND2", core::ModelKind::kMcsm, {"A", "B"}, nopt);
    WaveformSta sta(nl, {{"NAND2", &nand}});
    WaveStaOptions wopt;
    wopt.tstop = 3e-9;
    const auto nets = sta.run(wopt);
    const auto m50 =
        wave::crossing(nets.at("y"), tech_.vdd, 0.5, false, t_edge);
    ASSERT_TRUE(m50.has_value());
    const double csm_err = std::fabs(*m50 - *g50);

    // NLDM is optimistic under MIS; the CSM engine captures it.
    EXPECT_LT(arrivals.at("y").t50, *g50);
    EXPECT_LT(csm_err, nldm_err);
    EXPECT_GT(nldm_err, 2e-12);
}

}  // namespace
}  // namespace mcsm::sta
