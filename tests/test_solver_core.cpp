// Solver-core tests for the persistent sparse workspace:
//  * randomized dense-vs-sparse cross-checks on generated MNA systems
//    (pattern reuse, pivoting, refactor stability),
//  * a before/after golden test pinning solve_tran waveforms on the
//    NOR2/NAND2 fixtures to values captured from the pre-workspace dense
//    solver,
//  * an allocation counter proving the Newton assembly+solve cycle is
//    heap-free after prepare(),
//  * determinism of the parallel scenario sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <random>
#include <unordered_set>

#include "cells/library.h"
#include "common/alloc_counter.h"
#include "common/linear_solver.h"
#include "common/parallel.h"
#include "common/sparse_lu.h"
#include "common/sparse_matrix.h"
#include "engine/scenarios.h"
#include "spice/circuit.h"
#include "spice/dc_solver.h"
#include "spice/tran_solver.h"
#include "tech/tech130.h"
#include "wave/edges.h"

// Global allocation instrumentation: every operator new in this binary
// bumps the counter declared in common/alloc_counter.h. The zero-alloc
// assertions diff the counter around the measured region only.
#include "common/alloc_instrument.h"

namespace mcsm {
namespace {

using spice::Circuit;
using spice::SolverBackend;
using spice::SourceSpec;

// --- SparseLu vs dense LU on random systems ------------------------------

// Random sparse system with the structural quirks of MNA matrices:
// diagonally-strong conductance rows plus a few zero-diagonal "voltage
// branch" row/column pairs that force pivoting.
struct RandomSystem {
    SparseMatrix a;
    DenseMatrix dense;
    std::vector<double> b;
};

RandomSystem make_random_system(std::mt19937& rng, std::size_t n,
                                std::size_t n_branch) {
    std::uniform_real_distribution<double> mag(0.1, 2.0);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(n) - 1);

    std::vector<std::pair<int, int>> entries;
    const std::size_t n_cond = static_cast<std::size_t>(n - n_branch);
    for (std::size_t r = 0; r < n_cond; ++r) {
        entries.emplace_back(static_cast<int>(r), static_cast<int>(r));
        for (int k = 0; k < 3; ++k)
            entries.emplace_back(static_cast<int>(r), pick(rng));
    }
    for (std::size_t k = 0; k < n_branch; ++k) {
        // Branch row/col pair: a_{br,p} = a_{p,br} = 1, zero diagonal.
        const int br = static_cast<int>(n_cond + k);
        const int p = static_cast<int>(k % n_cond);
        entries.emplace_back(br, p);
        entries.emplace_back(p, br);
    }

    RandomSystem s;
    s.a.build(n, entries);
    s.dense.resize(n, n);
    // Fill values over the pattern: strong diagonal on conductance rows.
    for (std::size_t r = 0; r < n; ++r) {
        const auto cols = s.a.row_cols(r);
        for (int c : cols) {
            double v;
            if (static_cast<std::size_t>(c) == r)
                v = (r < n_cond) ? 3.0 + mag(rng) : 0.0;
            else
                v = mag(rng) - 1.0;
            // The branch coupling entries stay +-1-ish.
            if (r >= n_cond || static_cast<std::size_t>(c) >= n_cond)
                v = (r == static_cast<std::size_t>(c)) ? 0.0 : 1.0;
            s.a.add(r, static_cast<std::size_t>(c), v);
        }
    }
    for (std::size_t r = 0; r < n; ++r) {
        const auto cols = s.a.row_cols(r);
        const auto vals = s.a.row_values(r);
        for (std::size_t i = 0; i < cols.size(); ++i)
            s.dense.at(r, static_cast<std::size_t>(cols[i])) = vals[i];
    }
    s.b.resize(n);
    for (auto& v : s.b) v = mag(rng) - 1.0;
    return s;
}

TEST(SparseLu, MatchesDenseOnRandomSystems) {
    std::mt19937 rng(20260728);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 5 + static_cast<std::size_t>(trial % 20);
        const std::size_t n_branch = static_cast<std::size_t>(trial % 3);
        RandomSystem s = make_random_system(rng, n, n_branch);

        SparseLu lu;
        lu.factor(s.a);
        std::vector<double> x_sparse;
        lu.solve(s.b, x_sparse);

        const std::vector<double> x_dense = solve_lu(s.dense, s.b);
        ASSERT_EQ(x_sparse.size(), x_dense.size());
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x_sparse[i], x_dense[i],
                        1e-9 * std::max(1.0, std::fabs(x_dense[i])))
                << "trial " << trial << " unknown " << i;
    }
}

TEST(SparseLu, RefactorReusesSymbolicAnalysis) {
    std::mt19937 rng(7);
    RandomSystem s = make_random_system(rng, 12, 2);

    SparseLu lu;
    lu.factor(s.a);
    EXPECT_EQ(lu.full_factor_count(), 1u);

    // Same pattern, new values: the numeric-only refactor must run and
    // still match the dense solve.
    std::uniform_real_distribution<double> mag(0.1, 2.0);
    for (int round = 0; round < 5; ++round) {
        for (std::size_t r = 0; r < s.a.size(); ++r) {
            auto vals = s.a.row_values(r);
            const auto cols = s.a.row_cols(r);
            for (std::size_t i = 0; i < vals.size(); ++i) {
                // Keep the MNA shape: scale, don't re-sign.
                vals[i] *= 0.5 + mag(rng);
                s.dense.at(r, static_cast<std::size_t>(cols[i])) = vals[i];
            }
        }
        lu.factor(s.a);
        std::vector<double> x_sparse;
        lu.solve(s.b, x_sparse);
        const std::vector<double> x_dense = solve_lu(s.dense, s.b);
        for (std::size_t i = 0; i < s.a.size(); ++i)
            EXPECT_NEAR(x_sparse[i], x_dense[i],
                        1e-9 * std::max(1.0, std::fabs(x_dense[i])));
    }
    EXPECT_EQ(lu.full_factor_count(), 1u);
    EXPECT_EQ(lu.refactor_count(), 5u);
}

TEST(SparseLu, PivotsZeroDiagonal) {
    // [[0, 1], [1, 0]] x = b requires a row swap; a no-pivot elimination
    // would die on the zero diagonal.
    SparseMatrix a;
    a.build(2, {{0, 1}, {1, 0}});
    a.add(0, 1, 1.0);
    a.add(1, 0, 1.0);
    SparseLu lu;
    lu.factor(a);
    std::vector<double> x;
    lu.solve({2.0, 3.0}, x);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, ThrowsOnSingular) {
    SparseMatrix a;
    a.build(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
    a.add(0, 0, 1.0);
    a.add(0, 1, 2.0);
    a.add(1, 0, 0.5);
    a.add(1, 1, 1.0);  // row 1 = 0.5 * row 0
    SparseLu lu;
    EXPECT_THROW(lu.factor(a), NumericalError);
}

TEST(SparseMatrix, RowHashedSlotMapBeyondDenseLimit) {
    // n > 512 disables the dense (r, c) -> slot map, so every lookup goes
    // through the row-hashed map; cross-check it against a reference set on
    // a random large flat pattern.
    std::mt19937 rng(20260728);
    const std::size_t n = 1500;
    std::uniform_int_distribution<int> pick(0, static_cast<int>(n) - 1);

    std::vector<std::pair<int, int>> entries;
    std::unordered_set<long long> reference;
    auto key = [n](int r, int c) {
        return static_cast<long long>(r) * static_cast<long long>(n) + c;
    };
    for (std::size_t i = 0; i + 1 < n; ++i) {  // tridiagonal backbone
        entries.emplace_back(static_cast<int>(i), static_cast<int>(i + 1));
        entries.emplace_back(static_cast<int>(i + 1), static_cast<int>(i));
    }
    for (int k = 0; k < 4000; ++k)  // long-range fill-ins
        entries.emplace_back(pick(rng), pick(rng));
    for (const auto& [r, c] : entries) reference.insert(key(r, c));
    for (std::size_t i = 0; i < n; ++i)  // build() adds the diagonal
        reference.insert(key(static_cast<int>(i), static_cast<int>(i)));

    SparseMatrix a;
    a.build(n, entries);
    ASSERT_EQ(a.nnz(), reference.size());

    // Every pattern entry accumulates; every off-pattern probe is rejected
    // without disturbing stored values.
    for (std::size_t r = 0; r < n; ++r)
        for (int c : a.row_cols(r)) {
            EXPECT_TRUE(a.add(r, static_cast<std::size_t>(c), 1.0));
            EXPECT_TRUE(a.add(r, static_cast<std::size_t>(c), 0.5));
        }
    int probed = 0;
    while (probed < 2000) {
        const int r = pick(rng);
        const int c = pick(rng);
        if (reference.count(key(r, c))) continue;
        ++probed;
        EXPECT_FALSE(a.add(static_cast<std::size_t>(r),
                           static_cast<std::size_t>(c), 7.0));
        EXPECT_EQ(a.at(static_cast<std::size_t>(r),
                       static_cast<std::size_t>(c)),
                  0.0);
    }
    for (std::size_t r = 0; r < n; ++r)
        for (int c : a.row_cols(r))
            EXPECT_EQ(a.at(r, static_cast<std::size_t>(c)), 1.5);
}

// --- dense-vs-sparse cross-check through the full solver stack -----------

// Random linear MNA circuits: a resistor chain guaranteeing connectivity
// plus random extra resistors, voltage and current sources.
Circuit make_random_circuit(std::mt19937& rng, int n_nodes) {
    // Kept small enough that damped Newton (max_update clamp) settles well
    // within its iteration budget: node voltages stay within a few volts.
    std::uniform_real_distribution<double> res(1e2, 1e4);
    std::uniform_real_distribution<double> volt(-2.0, 2.0);
    std::uniform_real_distribution<double> cur(-1e-5, 1e-5);
    std::uniform_int_distribution<int> pick(0, n_nodes - 1);

    Circuit c;
    std::vector<int> nodes{Circuit::kGround};
    for (int i = 1; i < n_nodes; ++i)
        nodes.push_back(c.node("n" + std::to_string(i)));

    for (int i = 0; i + 1 < n_nodes; ++i)
        c.add_resistor("Rchain" + std::to_string(i), nodes[i], nodes[i + 1],
                       res(rng));
    for (int k = 0; k < n_nodes; ++k) {
        const int a = pick(rng);
        const int b = pick(rng);
        if (a == b) continue;
        c.add_resistor("Rx" + std::to_string(k), nodes[a], nodes[b], res(rng));
    }
    c.add_vsource("V1", nodes[1], Circuit::kGround, SourceSpec::dc(volt(rng)));
    if (n_nodes > 4)
        c.add_vsource("V2", nodes[3], nodes[2], SourceSpec::dc(volt(rng)));
    c.add_isource("I1", nodes[n_nodes - 1], Circuit::kGround,
                  SourceSpec::dc(cur(rng)));
    return c;
}

TEST(SolverWorkspace, RandomMnaDenseVsSparse) {
    std::mt19937 rng(42);
    for (int trial = 0; trial < 25; ++trial) {
        const int n_nodes = 4 + trial % 12;
        Circuit c = make_random_circuit(rng, n_nodes);

        c.set_solver_backend(SolverBackend::kSparse);
        const spice::DcResult sparse = spice::solve_dc(c);
        c.set_solver_backend(SolverBackend::kDense);
        const spice::DcResult dense = spice::solve_dc(c);

        ASSERT_EQ(sparse.x.size(), dense.x.size());
        for (std::size_t i = 0; i < sparse.x.size(); ++i)
            EXPECT_NEAR(sparse.x[i], dense.x[i],
                        1e-9 * std::max(1.0, std::fabs(dense.x[i])))
                << "trial " << trial << " unknown " << i;
    }
}

TEST(SolverWorkspace, NonlinearDenseVsSparse) {
    // A transistor circuit exercises gmin stepping and many refactors.
    const tech::Technology t = tech::make_tech130();
    auto build = [&]() {
        Circuit c;
        const int vdd = c.node("vdd");
        const int in = c.node("in");
        const int out = c.node("out");
        c.add_vsource("VDD", vdd, Circuit::kGround, SourceSpec::dc(t.vdd));
        c.add_vsource("VIN", in, Circuit::kGround, SourceSpec::dc(0.6));
        c.add_mosfet("MN", out, in, Circuit::kGround, Circuit::kGround,
                     t.nmos, t.wn_unit, t.lmin);
        c.add_mosfet("MP", out, in, vdd, vdd, t.pmos, t.wp_unit, t.lmin);
        return c;
    };
    Circuit cs = build();
    cs.set_solver_backend(SolverBackend::kSparse);
    const spice::DcResult rs = spice::solve_dc(cs);
    Circuit cd = build();
    cd.set_solver_backend(SolverBackend::kDense);
    const spice::DcResult rd = spice::solve_dc(cd);
    EXPECT_NEAR(rs.node_voltage(cs.node_id("out")),
                rd.node_voltage(cd.node_id("out")), 1e-6);
}

// --- before/after golden waveforms ---------------------------------------

// Samples captured from the pre-refactor (seed) solver on these exact
// fixtures; the retained dense backend reproduces its arithmetic bit for
// bit, the sparse workspace must stay within 1e-12 round-off.
struct GoldenCase {
    const char* cell;
    double expect[6];
};

constexpr double kSampleTimes[6] = {0.5e-9, 1.2e-9, 1.9e-9,
                                    2.1e-9, 2.4e-9, 3.0e-9};

const GoldenCase kGoldenCases[2] = {
    {"NOR2",
     {4.6317673879070125e-07, 7.9085409895830781e-06, 7.2342797787824844e-06,
      0.97777252336104081, 1.1999996953468755, 1.1999996963690085}},
    {"NAND2",
     {1.1999997086324907, 8.6724441956179568e-06, 4.631834537945254e-07,
      1.1938037397328249, 1.1999950309613474, 1.1999954109179714}},
};

void check_golden(SolverBackend backend, double tol) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    spice::TranOptions topt;
    topt.tstop = 3.2e-9;
    topt.dt = 2e-12;
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, t.vdd);
    for (const GoldenCase& gc : kGoldenCases) {
        engine::GoldenCell cell(lib, gc.cell, {{"A", stim.a}, {"B", stim.b}},
                                engine::LoadSpec{5e-15, 0, "INV_X1"});
        cell.circuit().set_solver_backend(backend);
        const spice::TranResult res = cell.run(topt);
        const wave::Waveform w = res.node_waveform(cell.out_node());
        for (int i = 0; i < 6; ++i)
            EXPECT_NEAR(w.at(kSampleTimes[i]), gc.expect[i], tol)
                << gc.cell << " sample " << i;
    }
}

TEST(GoldenWaveforms, DenseBackendBitCompatibleWithSeed) {
    check_golden(SolverBackend::kDense, 1e-12);
}

TEST(GoldenWaveforms, SparseWorkspaceWithinRoundoff) {
    check_golden(SolverBackend::kSparse, 1e-9);
}

// --- zero allocations in the Newton assembly+solve cycle -----------------

TEST(SolverWorkspace, NewtonCycleIsAllocationFreeAfterPrepare) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    const engine::HistoryStimulus stim =
        engine::nor2_history(engine::HistoryCase::kFast10, t.vdd);
    engine::GoldenCell cell(lib, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                            engine::LoadSpec{5e-15, 2, "INV_X1"});
    Circuit& c = cell.circuit();
    c.set_solver_backend(SolverBackend::kSparse);

    // Warm everything: workspace build, first factorization, operating
    // point, and the source-waveform evaluation paths.
    const spice::DcResult op = spice::solve_dc(c);
    spice::SolverWorkspace& ws = c.workspace();

    std::vector<double> x = op.x;
    const std::vector<double> state(
        static_cast<std::size_t>(c.state_total()), 0.0);

    spice::SimContext dc_ctx;
    dc_ctx.mode = spice::SimContext::Mode::kDc;
    dc_ctx.x = &x;

    spice::SimContext tran_ctx;
    tran_ctx.mode = spice::SimContext::Mode::kTran;
    tran_ctx.time = 1e-10;
    tran_ctx.dt = 1e-12;
    tran_ctx.x = &x;
    tran_ctx.x_prev = &x;
    tran_ctx.state = &state;
    tran_ctx.step_id = 1;

    // Both assembly flavors: the batched evaluate-and-stamp entry point the
    // solvers use (SoA MOSFET pass + virtual remainder) and the legacy
    // manual device loop.
    auto cycle = [&](const spice::SimContext& ctx) {
        spice::Stamper& st = ws.assemble(ctx);
        st.add_gmin_everywhere(1e-12);
        (void)ws.solve();
    };
    auto cycle_manual = [&](const spice::SimContext& ctx) {
        spice::Stamper& st = ws.begin_assembly();
        for (const auto& dev : c.devices()) dev->stamp(st, ctx);
        st.add_gmin_everywhere(1e-12);
        (void)ws.solve();
    };
    cycle(dc_ctx);   // warm the solve buffers
    cycle(tran_ctx); // and the transient companion caches
    cycle_manual(dc_ctx);

    // Blocked multi-RHS solves on the frozen factorization, preallocated
    // like the DC sweep solver's round buffers.
    const std::size_t n_u = ws.system_size();
    constexpr std::size_t kRhs = 8;
    std::vector<double> b_block(n_u * kRhs);
    std::vector<double> x_block(n_u * kRhs);
    std::vector<double> u(n_u, 0.0);
    std::vector<double> r(n_u, 0.0);
    for (std::size_t i = 0; i < b_block.size(); ++i)
        b_block[i] = 1e-6 * static_cast<double>(i % 17);
    ws.factor();
    ws.solve_block(b_block.data(), x_block.data(), kRhs);  // warm

    const std::size_t before = AllocCounter::count();
    for (int it = 0; it < 50; ++it) {
        cycle(dc_ctx);
        tran_ctx.step_id = 2 + it;  // force cap-cache refreshes too
        cycle(tran_ctx);
        cycle_manual(dc_ctx);
        ws.residual(u, r);
        ws.factor();
        ws.solve_block(b_block.data(), x_block.data(), kRhs);
    }
    const std::size_t after = AllocCounter::count();
    EXPECT_EQ(after - before, 0u)
        << "Newton assembly+solve allocated on the steady-state path";
}

// --- parallel sweep determinism ------------------------------------------

TEST(Scenarios, ParallelSweepMatchesSerial) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);

    std::vector<engine::ScenarioSpec> specs;
    for (int k = 0; k < 6; ++k) {
        const engine::MisStimulus stim = engine::nor2_simultaneous_fall(
            t.vdd, 0.6e-9, 80e-12, static_cast<double>(k) * 20e-12);
        specs.push_back({"skew" + std::to_string(k),
                         "NOR2",
                         {{"A", stim.a}, {"B", stim.b}},
                         engine::LoadSpec{5e-15, 0, "INV_X1"}});
    }
    spice::TranOptions topt;
    topt.tstop = 1.6e-9;
    topt.dt = 4e-12;

    const auto serial = engine::run_golden_scenarios(lib, specs, topt, 1);
    const auto parallel = engine::run_golden_scenarios(lib, specs, topt, 4);
    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(serial[i].name, specs[i].name);
        EXPECT_EQ(parallel[i].name, specs[i].name);
        const wave::Waveform ws_ = serial[i].result.node_waveform(
            serial[i].out_node);
        const wave::Waveform wp = parallel[i].result.node_waveform(
            parallel[i].out_node);
        ASSERT_EQ(ws_.size(), wp.size());
        for (std::size_t s = 0; s < ws_.size(); s += 7)
            EXPECT_EQ(ws_.value(s), wp.value(s))
                << "scenario " << i << " sample " << s;
    }
}

TEST(Parallel, ForCoversAllIndicesAndPropagatesErrors) {
    std::vector<int> hits(1000, 0);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; }, 4);
    for (int h : hits) EXPECT_EQ(h, 1);

    EXPECT_THROW(
        parallel_for(
            16, [&](std::size_t i) { if (i == 7) throw NumericalError("x"); },
            4),
        NumericalError);

    // Nested calls from inside a pool worker run inline (no deadlock).
    std::atomic<int> total{0};
    parallel_for(
        8,
        [&](std::size_t) {
            parallel_for(8, [&](std::size_t) { ++total; }, 4);
        },
        4);
    EXPECT_EQ(total.load(), 64);
}

}  // namespace
}  // namespace mcsm
