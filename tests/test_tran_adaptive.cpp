// Adaptive-transient fast-path tests:
//  * TranOptions validation rejects every malformed field with a
//    descriptive ModelError,
//  * LTE-adaptive stepping agrees with the fixed-grid baseline on golden
//    NOR2 scenarios (timing within the bench gate's tolerance) while
//    taking fewer steps,
//  * Jacobian reuse on the fixed grid tracks the plain Newton loop,
//  * adaptive + reuse + delta-gated device revalidation is bitwise
//    deterministic across thread counts (the run_id scoping contract),
//  * LinearBatch assembly matches the per-device virtual stamp path at
//    ulp scale on the same CSR storage,
//  * breakpoints landing within one ulp of an accepted step are consumed,
//    never double-stepped,
//  * rejected-step / refactor counters are exercised, and
//  * MCSM_TRAN_ADAPTIVE=1 upgrades fixed-grid calls to adaptive stepping.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "cells/library.h"
#include "common/error.h"
#include "engine/scenarios.h"
#include "spice/circuit.h"
#include "spice/solver_workspace.h"
#include "spice/tran_solver.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "wave/metrics.h"
#include "wave/waveform.h"

namespace mcsm {
namespace {

using spice::Circuit;
using spice::SolverBackend;
using spice::SourceSpec;
using spice::StepControl;
using spice::TranOptions;
using spice::TranResult;

// Pins MCSM_TRAN_ADAPTIVE for a scope and restores the previous value:
// tests that assert *fixed-grid* behavior must hold even when the CI job
// exports the override for the rest of the suite.
class ScopedTranAdaptiveEnv {
public:
    explicit ScopedTranAdaptiveEnv(const char* value) {
        const char* cur = std::getenv(kName);
        had_ = cur != nullptr;
        if (had_) old_ = cur;
        if (value != nullptr)
            setenv(kName, value, 1);
        else
            unsetenv(kName);
    }
    ~ScopedTranAdaptiveEnv() {
        if (had_)
            setenv(kName, old_.c_str(), 1);
        else
            unsetenv(kName);
    }
    ScopedTranAdaptiveEnv(const ScopedTranAdaptiveEnv&) = delete;
    ScopedTranAdaptiveEnv& operator=(const ScopedTranAdaptiveEnv&) = delete;

private:
    static constexpr const char* kName = "MCSM_TRAN_ADAPTIVE";
    bool had_ = false;
    std::string old_;
};

// --- TranOptions validation ----------------------------------------------

TEST(TranOptionsValidation, AcceptsDefaultsAndFastConfig) {
    EXPECT_NO_THROW(spice::validate_tran_options(TranOptions{}));
    EXPECT_NO_THROW(spice::validate_tran_options(
        spice::fast_tran_options(2.5e-9, 2e-12)));
}

TEST(TranOptionsValidation, RejectsEachBadFieldWithModelError) {
    const auto expect_rejected = [](void (*mutate)(TranOptions&)) {
        TranOptions o;
        mutate(o);
        EXPECT_THROW(spice::validate_tran_options(o), ModelError);
    };
    expect_rejected([](TranOptions& o) { o.tstop = 0.0; });
    expect_rejected([](TranOptions& o) { o.tstop = -1e-9; });
    expect_rejected([](TranOptions& o) {
        o.tstop = std::numeric_limits<double>::quiet_NaN();
    });
    expect_rejected([](TranOptions& o) { o.dt = 0.0; });
    expect_rejected([](TranOptions& o) {
        o.dt = std::numeric_limits<double>::infinity();
    });
    expect_rejected([](TranOptions& o) { o.max_newton = 0; });
    expect_rejected([](TranOptions& o) { o.vtol = 0.0; });
    expect_rejected([](TranOptions& o) { o.max_update = -0.1; });
    expect_rejected([](TranOptions& o) { o.gmin = -1e-12; });
    expect_rejected([](TranOptions& o) { o.max_subdivisions = -1; });
    expect_rejected([](TranOptions& o) { o.dt_min = -1e-15; });
    expect_rejected([](TranOptions& o) {
        o.dt_min = 2e-12;
        o.dt_max = 1e-12;
    });
    expect_rejected([](TranOptions& o) { o.itol = 0.0; });
    expect_rejected([](TranOptions& o) { o.stale_dv = -1e-4; });
    // Adaptive-only constraints: a zero LTE budget or sub-1 growth factor
    // is meaningless; both are legal while the fixed grid ignores them.
    expect_rejected([](TranOptions& o) {
        o.step_control = StepControl::kAdaptiveLte;
        o.lte_rel = 0.0;
        o.lte_abs_v = 0.0;
    });
    expect_rejected([](TranOptions& o) {
        o.step_control = StepControl::kAdaptiveLte;
        o.grow_max = 0.5;
    });
    {
        TranOptions o;
        o.lte_rel = 0.0;
        o.lte_abs_v = 0.0;
        o.grow_max = 0.5;  // fixed grid: LTE knobs are inert
        EXPECT_NO_THROW(spice::validate_tran_options(o));
    }
}

// --- shared golden-scenario fixture --------------------------------------

std::vector<engine::ScenarioSpec> nor2_specs(const tech::Technology& t,
                                             int count) {
    std::vector<engine::ScenarioSpec> specs;
    for (int k = 0; k < count; ++k) {
        const engine::MisStimulus stim = engine::nor2_simultaneous_fall(
            t.vdd, 0.6e-9, 80e-12, static_cast<double>(k) * 20e-12);
        specs.push_back({"skew" + std::to_string(k),
                         "NOR2",
                         {{"A", stim.a}, {"B", stim.b}},
                         engine::LoadSpec{5e-15, 0, "INV_X1"}});
    }
    return specs;
}

double t50_rise(const wave::Waveform& w, double vdd) {
    const auto c = wave::crossing(w, vdd, 0.5, /*rising=*/true);
    EXPECT_TRUE(c.has_value());
    return c.has_value() ? *c : -1.0;
}

// --- adaptive vs fixed grid ----------------------------------------------

TEST(AdaptiveLte, MatchesFixedGridTimingWithFewerSteps) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    const auto specs = nor2_specs(t, 2);

    TranOptions fixed;
    fixed.tstop = 1.6e-9;
    fixed.dt = 2e-12;
    const TranOptions fast = spice::fast_tran_options(1.6e-9, 2e-12);

    const auto ref = engine::run_golden_scenarios(lib, specs, fixed, 1);
    const auto adapt = engine::run_golden_scenarios(lib, specs, fast, 1);
    ASSERT_EQ(ref.size(), specs.size());
    ASSERT_EQ(adapt.size(), specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const wave::Waveform wr =
            ref[i].result.node_waveform(ref[i].out_node);
        const wave::Waveform wa =
            adapt[i].result.node_waveform(adapt[i].out_node);

        // Both inputs fall -> the NOR2 output rises; gate the 50% crossing
        // and the 10-90 slew with the bench tolerance max(5%, 2 ps).
        const double t50_r = t50_rise(wr, t.vdd);
        const double t50_a = t50_rise(wa, t.vdd);
        EXPECT_LT(std::fabs(t50_a - t50_r), 2e-12)
            << "scenario " << specs[i].name;

        const auto slew_r = wave::slew_10_90(wr, t.vdd, /*rising=*/true);
        const auto slew_a = wave::slew_10_90(wa, t.vdd, /*rising=*/true);
        ASSERT_TRUE(slew_r.has_value() && slew_a.has_value());
        EXPECT_LT(std::fabs(*slew_a - *slew_r),
                  std::max(0.05 * *slew_r, 2e-12))
            << "scenario " << specs[i].name;

        // The whole point: adaptive accepts fewer steps than the fixed
        // grid's 800 while holding that accuracy.
        const auto& st = adapt[i].result.stats();
        EXPECT_GT(st.steps_accepted, 0);
        EXPECT_LT(st.steps_accepted,
                  static_cast<long long>(wr.size()));
    }
}

TEST(FixedGrid, JacobianReuseTracksPlainNewton) {
    // This test is about the *fixed-grid* reuse path: identical record
    // grids are part of the claim, so pin the env override off.
    ScopedTranAdaptiveEnv env(nullptr);
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    const auto specs = nor2_specs(t, 1);

    TranOptions plain;
    plain.tstop = 1.6e-9;
    plain.dt = 2e-12;
    TranOptions reuse = plain;
    reuse.reuse_jacobian = true;
    reuse.itol = 1e-9;

    const auto a = engine::run_golden_scenarios(lib, specs, plain, 1);
    const auto b = engine::run_golden_scenarios(lib, specs, reuse, 1);
    const wave::Waveform wa = a[0].result.node_waveform(a[0].out_node);
    const wave::Waveform wb = b[0].result.node_waveform(b[0].out_node);

    // Same record grid; the delta-form Newton accepts on its own residual,
    // so the waveforms agree far below device accuracy.
    ASSERT_EQ(wa.size(), wb.size());
    double max_dv = 0.0;
    for (std::size_t s = 0; s < wa.size(); ++s) {
        EXPECT_EQ(wa.time(s), wb.time(s));
        max_dv = std::max(max_dv, std::fabs(wa.value(s) - wb.value(s)));
    }
    EXPECT_LT(max_dv, 1e-5);

    const auto& st = b[0].result.stats();
    EXPECT_GT(st.jacobian_reuse_steps, 0);
    EXPECT_GT(st.lu_refactors, 0);
    EXPECT_LT(st.lu_refactors, st.steps_accepted);
}

TEST(AdaptiveLte, RejectionAndRefreshCountersExercised) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    // A sharp edge into a loaded NOR2 forces LTE rejections: the controller
    // must shrink into the edge and regrow after it.
    std::vector<engine::ScenarioSpec> specs;
    const engine::MisStimulus stim =
        engine::nor2_simultaneous_fall(t.vdd, 0.6e-9, 20e-12, 0.0);
    specs.push_back({"sharp",
                     "NOR2",
                     {{"A", stim.a}, {"B", stim.b}},
                     engine::LoadSpec{20e-15, 0, "INV_X1"}});

    const TranOptions fast = spice::fast_tran_options(1.6e-9, 2e-12);
    const auto out = engine::run_golden_scenarios(lib, specs, fast, 1);
    const auto& st = out[0].result.stats();
    EXPECT_GT(st.steps_accepted, 0);
    EXPECT_GT(st.steps_rejected, 0);
    EXPECT_GT(st.lu_refactors, 0);
    EXPECT_GT(st.jacobian_reuse_steps, 0);
    EXPECT_GE(st.newton_iters, st.steps_accepted);
    EXPECT_LE(st.jacobian_reuse_steps, st.steps_accepted);
}

// --- determinism across thread counts ------------------------------------

TEST(AdaptiveLte, BitDeterministicAcrossThreadCounts) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    const auto specs = nor2_specs(t, 6);

    // The full fast path: adaptive dt, frozen factorizations, and
    // delta-gated device revalidation. The pooled per-thread circuits are
    // reused across scenarios, so this pins the run_id scoping contract:
    // no linearization history may leak between scenarios.
    const TranOptions fast = spice::fast_tran_options(1.6e-9, 2e-12);

    const auto serial = engine::run_golden_scenarios(lib, specs, fast, 1);
    const auto parallel = engine::run_golden_scenarios(lib, specs, fast, 4);
    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const wave::Waveform ws_ =
            serial[i].result.node_waveform(serial[i].out_node);
        const wave::Waveform wp =
            parallel[i].result.node_waveform(parallel[i].out_node);
        ASSERT_EQ(ws_.size(), wp.size()) << "scenario " << i;
        for (std::size_t s = 0; s < ws_.size(); ++s) {
            EXPECT_EQ(ws_.time(s), wp.time(s))
                << "scenario " << i << " sample " << s;
            EXPECT_EQ(ws_.value(s), wp.value(s))
                << "scenario " << i << " sample " << s;
        }
    }
}

// --- LinearBatch vs virtual stamps ---------------------------------------

int ulp_diff(double a, double b) {
    if (a == b) return 0;
    for (int k = 1; k <= 8; ++k) {
        a = std::nextafter(a, b);
        if (a == b) return k;
    }
    return 9;
}

// An RC/source-only circuit: every device lands in LinearBatch on the
// sparse backend (V sources with dc and pwl specs, I source, resistor
// ladder, grounded and floating caps).
Circuit make_linear_circuit() {
    Circuit c;
    const int a = c.node("a");
    const int b = c.node("b");
    const int d = c.node("d");
    const int e = c.node("e");
    c.add_vsource("V1", a, Circuit::kGround, SourceSpec::dc(1.2));
    c.add_vsource("V2", e, Circuit::kGround,
                  SourceSpec::pwl(wave::piecewise_edges(
                      0.0, {{0.1e-9, 50e-12, 1.2}})));
    c.add_isource("I1", d, Circuit::kGround, SourceSpec::dc(1e-6));
    c.add_resistor("R1", a, b, 1e3);
    c.add_resistor("R2", b, d, 2e3);
    c.add_resistor("R3", d, e, 500.0);
    c.add_capacitor("C1", b, Circuit::kGround, 10e-15);
    c.add_capacitor("C2", d, Circuit::kGround, 5e-15);
    c.add_capacitor("C3", b, d, 2e-15);
    return c;
}

TEST(LinearBatch, MatchesVirtualStampAtUlpScale) {
    Circuit c = make_linear_circuit();
    c.set_solver_backend(SolverBackend::kSparse);
    c.prepare();
    spice::SolverWorkspace& ws = c.workspace();
    ASSERT_GT(ws.linear_batch().size(), 0u);

    const auto n_x = static_cast<std::size_t>(c.node_count()) +
                     static_cast<std::size_t>(c.branch_total());
    std::vector<double> x(n_x, 0.0);
    for (std::size_t i = 1; i < static_cast<std::size_t>(c.node_count()); ++i)
        x[i] = 0.1 * static_cast<double>(i);
    std::vector<double> x_prev = x;
    std::vector<double> state(static_cast<std::size_t>(c.state_total()), 0.0);
    for (std::size_t i = 0; i < state.size(); ++i)
        state[i] = 1e-7 * static_cast<double>(i + 1);

    for (const bool tran : {false, true}) {
        spice::SimContext ctx;
        ctx.mode = tran ? spice::SimContext::Mode::kTran
                        : spice::SimContext::Mode::kDc;
        ctx.time = 0.12e-9;  // inside V2's ramp, so the pwl eval matters
        ctx.dt = tran ? 1e-12 : 0.0;
        ctx.integrator = spice::Integrator::kTrapezoidal;
        ctx.x = &x;
        ctx.x_prev = &x_prev;
        ctx.state = &state;
        ctx.step_id = tran ? 990001 : -1;

        // Reference: the per-device virtual path into the same CSR storage.
        spice::Stamper& st = ws.begin_assembly();
        for (const auto& dev : c.devices()) dev->stamp(st, ctx);
        const auto ref_span = ws.csr_matrix().values();
        const std::vector<double> ref_vals(ref_span.begin(), ref_span.end());
        const std::vector<double> ref_rhs = st.rhs();

        // Batched assembly (fresh step_id per mode: no cache carryover).
        spice::Stamper& st2 = ws.assemble(ctx);
        const auto got_vals = ws.csr_matrix().values();
        const std::vector<double>& got_rhs = st2.rhs();

        ASSERT_EQ(ref_vals.size(), got_vals.size());
        for (std::size_t k = 0; k < ref_vals.size(); ++k)
            EXPECT_LE(ulp_diff(ref_vals[k], got_vals[k]), 2)
                << (tran ? "tran" : "dc") << " matrix slot " << k;
        ASSERT_EQ(ref_rhs.size(), got_rhs.size());
        for (std::size_t k = 0; k < ref_rhs.size(); ++k)
            EXPECT_LE(ulp_diff(ref_rhs[k], got_rhs[k]), 2)
                << (tran ? "tran" : "dc") << " rhs row " << k;
    }
}

// --- breakpoint handling --------------------------------------------------

TEST(Breakpoints, UlpCoincidentBreakpointsAreNotDoubleStepped) {
    const double t_bp = 0.4e-9;
    Circuit c;
    const int a = c.node("a");
    const int b = c.node("b");
    // Two sources whose corners differ by one ulp: the solver must treat
    // them as one breakpoint, and an accepted step landing on it must
    // consume it rather than re-stepping a zero-length interval.
    c.add_vsource("VA", a, Circuit::kGround,
                  SourceSpec::pwl(wave::piecewise_edges(
                      0.0, {{t_bp, 40e-12, 1.2}})));
    c.add_vsource("VB", b, Circuit::kGround,
                  SourceSpec::pwl(wave::piecewise_edges(
                      0.0, {{std::nextafter(t_bp, 1.0), 40e-12, 1.2}})));
    c.add_resistor("R1", a, b, 1e3);
    c.add_capacitor("C1", b, Circuit::kGround, 20e-15);
    c.set_solver_backend(SolverBackend::kSparse);

    const TranOptions fast = spice::fast_tran_options(1.0e-9, 2e-12);
    const TranResult res = spice::solve_tran(c, fast);
    const std::vector<double>& times = res.times();
    ASSERT_GT(times.size(), 2u);
    // Strictly increasing record times: a double-stepped breakpoint shows
    // up as a repeated (or reversed) time.
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_LT(times[i - 1], times[i]) << "sample " << i;
    // The breakpoint itself is visited at most once.
    int at_bp = 0;
    for (const double t : times)
        if (std::fabs(t - t_bp) <= 1e-21) ++at_bp;
    EXPECT_LE(at_bp, 1);
    // And the run reaches tstop.
    EXPECT_NEAR(times.back(), 1.0e-9, 1e-15);
}

// --- environment override -------------------------------------------------

TEST(EnvOverride, TranAdaptiveUpgradesFixedGridCalls) {
    const tech::Technology t = tech::make_tech130();
    const cells::CellLibrary lib(t);
    const auto specs = nor2_specs(t, 1);

    TranOptions fixed;
    fixed.tstop = 1.6e-9;
    fixed.dt = 4e-12;

    std::vector<engine::ScenarioResult> plain;
    {
        ScopedTranAdaptiveEnv off(nullptr);
        plain = engine::run_golden_scenarios(lib, specs, fixed, 1);
    }
    std::vector<engine::ScenarioResult> forced;
    {
        ScopedTranAdaptiveEnv on("1");
        forced = engine::run_golden_scenarios(lib, specs, fixed, 1);
    }

    // The upgraded run records at accepted (LTE-chosen) steps instead of
    // the fixed grid, so the time axes differ while timing agrees within
    // the adaptive default budget.
    EXPECT_NE(plain[0].result.times(), forced[0].result.times());
    const wave::Waveform wp =
        plain[0].result.node_waveform(plain[0].out_node);
    const wave::Waveform wf =
        forced[0].result.node_waveform(forced[0].out_node);
    EXPECT_LT(std::fabs(t50_rise(wf, t.vdd) - t50_rise(wp, t.vdd)), 2e-12);
}

}  // namespace
}  // namespace mcsm
