// Network-tier tests: the wire-protocol codec (locale-proof from_chars
// parsing, shortest-round-trip result rendering), durable store plumbing
// (atomic publish, EXDEV fallback, orphan-temp cleanup / crash recovery),
// the mmap zero-parse pack (bit-exact round trip, corruption rejection,
// hot reload + generation retirement) and the socket server (concurrent
// pipelined clients bitwise-identical to in-process batches, control
// lines, admission, client-disconnect resilience).
#include <gtest/gtest.h>

#include <clocale>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cells/library.h"
#include "common/error.h"
#include "common/fp_text.h"
#include "common/single_flight.h"
#include "core/characterizer.h"
#include "core/model_io.h"
#include "net/client.h"
#include "net/query_text.h"
#include "net/server.h"
#include "serve/mapped_store.h"
#include "serve/model_store.h"
#include "serve/repository.h"
#include "serve/timing_service.h"
#include "tech/tech130.h"

namespace mcsm::net {
namespace {

namespace fs = std::filesystem;
using serve::TimingQuery;
using serve::TimingResult;

core::CharOptions fast_options() {
    core::CharOptions opt;
    opt.transient_caps = false;
    opt.grid_points = 5;
    opt.cin_points = 5;
    opt.threads = 1;
    return opt;
}

std::string binary_bytes(const core::CsmModel& model) {
    std::stringstream ss;
    serve::write_model_binary(ss, model);
    return ss.str();
}

// Shared characterized models (expensive; characterize once per suite).
struct Shared {
    tech::Technology tech = tech::make_tech130();
    cells::CellLibrary lib{tech};
    core::CsmModel inv;
    core::CsmModel nor;

    static const Shared& get() {
        static Shared s;
        return s;
    }

private:
    Shared() {
        const core::Characterizer chr(lib);
        inv = chr.characterize("INV_X1", core::ModelKind::kSis, {"A"},
                               fast_options());
        nor = chr.characterize("NOR2", core::ModelKind::kMcsm, {"A", "B"},
                               fast_options());
    }
};

// Unique scratch directory per test, removed on scope exit.
struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("mcsm_net_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
};

// Small surface grid: socket tests need warm surfaces, not wide ones.
serve::ServeOptions small_serve_options() {
    serve::ServeOptions sopt;
    sopt.slew_knots = {30e-12, 200e-12};
    sopt.skew_knots = {-2.0, 0.0, 2.0};
    sopt.load_knots = {1e-15, 16e-15};
    return sopt;
}

TimingQuery mixed_query(std::size_t i) {
    TimingQuery q;
    if (i % 3 == 0) {
        q.cell = "INV_X1";
        q.pins = {"A"};
        q.slews = {(35 + 11.0 * (i % 13)) * 1e-12};
    } else {
        q.cell = "NOR2";
        q.pins = {"A", "B"};
        q.slews = {(40 + 7.0 * (i % 17)) * 1e-12,
                   (50 + 9.0 * (i % 11)) * 1e-12};
        q.skews = {0.0, (static_cast<double>(i % 9) - 4.0) * 20e-12};
    }
    q.inputs_rise = (i % 2) == 1;
    q.load_cap = (1.5 + 0.7 * static_cast<double>(i % 19)) * 1e-15;
    return q;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// --- wire codec ---------------------------------------------------------

TEST(WireCodec, ParsesTheFullGrammar) {
    TimingQuery q;
    ASSERT_TRUE(parse_query_line(
        "NOR2 A,B fall 50,60.5 0,-20 3.25 pi=1.5:350:4 vdd=1.08 temp=85", q));
    EXPECT_EQ(q.cell, "NOR2");
    ASSERT_EQ(q.pins.size(), 2u);
    EXPECT_EQ(q.pins[0], "A");
    EXPECT_EQ(q.pins[1], "B");
    EXPECT_FALSE(q.inputs_rise);
    ASSERT_EQ(q.slews.size(), 2u);
    EXPECT_DOUBLE_EQ(q.slews[1], 60.5e-12);
    ASSERT_EQ(q.skews.size(), 2u);
    EXPECT_DOUBLE_EQ(q.skews[1], -20e-12);
    EXPECT_DOUBLE_EQ(q.load_cap, 3.25e-15);
    EXPECT_DOUBLE_EQ(q.c_near, 1.5e-15);
    EXPECT_DOUBLE_EQ(q.r_wire, 350.0);
    EXPECT_DOUBLE_EQ(q.c_far, 4e-15);
    EXPECT_DOUBLE_EQ(q.corner.vdd, 1.08);
    EXPECT_DOUBLE_EQ(q.corner.temp_c, 85.0);
    EXPECT_FALSE(q.exact);

    // A lone 0 in the skew field means simultaneous switching.
    ASSERT_TRUE(parse_query_line("NOR2 A,B rise 50,60 0 3 exact", q));
    EXPECT_TRUE(q.skews.empty());
    EXPECT_TRUE(q.exact);

    // Blank / comment lines parse to "nothing", not an error.
    EXPECT_FALSE(parse_query_line("", q));
    EXPECT_FALSE(parse_query_line("   ", q));
    EXPECT_FALSE(parse_query_line("# comment", q));

    // Malformed lines throw (truncated, bad direction, bad number,
    // trailing junk inside a number, unknown option).
    EXPECT_THROW(parse_query_line("INV_X1 A rise 50", q), ModelError);
    EXPECT_THROW(parse_query_line("INV_X1 A up 50 0 3", q), ModelError);
    EXPECT_THROW(parse_query_line("INV_X1 A rise x 0 3", q), ModelError);
    EXPECT_THROW(parse_query_line("INV_X1 A rise 50 0 3z", q), ModelError);
    EXPECT_THROW(parse_query_line("INV_X1 A rise 50 0 3 bogus=1", q),
                 ModelError);
    EXPECT_THROW(parse_query_line("INV_X1 A rise 50 0 inf", q), ModelError);
}

TEST(WireCodec, QueryLineRoundTripsThroughTheFormatter) {
    for (std::size_t i = 0; i < 40; ++i) {
        TimingQuery q = mixed_query(i);
        if (i % 5 == 0) {
            q.c_near = 1.5e-15;
            q.r_wire = 420.0;
            q.c_far = 3e-15;
        }
        if (i % 7 == 0) {
            q.corner.vdd = 1.08;
            q.corner.temp_c = 85.0;
        }
        if (i % 11 == 0) q.exact = true;
        const std::string line = format_query_line(q);
        TimingQuery back;
        ASSERT_TRUE(parse_query_line(line, back)) << line;
        EXPECT_EQ(back.cell, q.cell);
        EXPECT_EQ(back.pins, q.pins);
        EXPECT_EQ(back.inputs_rise, q.inputs_rise);
        EXPECT_EQ(back.exact, q.exact);
        ASSERT_EQ(back.slews.size(), q.slews.size());
        for (std::size_t k = 0; k < q.slews.size(); ++k)
            EXPECT_NEAR(back.slews[k], q.slews[k], 1e-9 * q.slews[k]);
        EXPECT_NEAR(back.load_cap, q.load_cap, 1e-9 * q.load_cap);
        EXPECT_NEAR(back.r_wire, q.r_wire, 1e-9 * (q.r_wire + 1));
        // vdd/temp travel unscaled, so shortest-round-trip rendering makes
        // them exact; ps/fF fields pick up one ULP from the unit scaling,
        // which the NEAR checks above allow.
        EXPECT_EQ(bits(back.corner.vdd), bits(q.corner.vdd));
        EXPECT_EQ(bits(back.corner.temp_c), bits(q.corner.temp_c));
    }
}

TEST(WireCodec, ResultLineRoundTripsBitwise) {
    const double quirks[] = {5e-324,  -5e-324, -0.0,    1e308,
                             3.141592653589793, 7.77e-16, 2.5e-11};
    std::uint64_t next_id = 0;
    for (double d : quirks) {
        for (double s : quirks) {
            TimingResult r;
            r.valid = true;
            r.delay = d;
            r.slew = s;
            r.path = (next_id % 2) == 0 ? serve::ResultPath::kLut
                                        : serve::ResultPath::kTransient;
            const std::uint64_t id = next_id++;
            std::uint64_t got_id = 0;
            const TimingResult back =
                parse_result_line(format_result_line(id, r), got_id);
            EXPECT_EQ(got_id, id);
            ASSERT_TRUE(back.valid);
            EXPECT_EQ(bits(back.delay), bits(r.delay));
            EXPECT_EQ(bits(back.slew), bits(r.slew));
            EXPECT_EQ(back.path, r.path);
        }
    }

    TimingResult err;
    err.valid = false;
    err.error = "model not found:\nmulti line";
    std::uint64_t got_id = 0;
    const TimingResult back =
        parse_result_line(format_result_line(17, err), got_id);
    EXPECT_EQ(got_id, 17u);
    EXPECT_FALSE(back.valid);
    EXPECT_EQ(back.error, "model not found: multi line");

    EXPECT_THROW(parse_result_line("ok x 1 2 lut", got_id), ModelError);
    EXPECT_THROW(parse_result_line("nope 1", got_id), ModelError);
    EXPECT_THROW(parse_result_line("ok 1 2 3 warp", got_id), ModelError);
}

// setlocale is process-global; always restore "C" (the gtest default) so
// a failing assertion cannot leak a comma locale into later tests.
struct LocaleGuard {
    ~LocaleGuard() { std::setlocale(LC_ALL, "C"); }
};

TEST(WireCodec, CommaLocaleDoesNotChangeTheWireFormat) {
    LocaleGuard guard;
    const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                                "fr_FR.utf8",  "nl_NL.UTF-8", "de_DE",
                                "fr_FR"};
    const char* chosen = nullptr;
    for (const char* name : candidates) {
        if (std::setlocale(LC_ALL, name) != nullptr &&
            std::localeconv()->decimal_point[0] == ',') {
            chosen = name;
            break;
        }
    }
    if (chosen == nullptr)
        GTEST_SKIP() << "no comma-decimal locale installed";

    // The regression this guards: std::stod under a comma locale reads
    // "2.5" as 2 (radix mismatch). from_chars is locale-independent.
    double v = 0.0;
    EXPECT_TRUE(parse_double_token("2.5", v));
    EXPECT_EQ(v, 2.5);
    EXPECT_FALSE(parse_double_token("2,5", v));  // comma is never a radix

    TimingQuery q;
    ASSERT_TRUE(parse_query_line("INV_X1 A rise 50.5 0 2.5", q));
    EXPECT_EQ(q.load_cap, 2.5e-15);
    EXPECT_EQ(q.slews[0], 50.5e-12);

    TimingResult r;
    r.valid = true;
    r.delay = 1.25e-12;
    r.slew = 3.5e-11;
    const std::string line = format_result_line(3, r);
    EXPECT_EQ(line.find(','), std::string::npos) << line;
    std::uint64_t id = 0;
    const TimingResult back = parse_result_line(line, id);
    EXPECT_EQ(bits(back.delay), bits(r.delay));
    EXPECT_EQ(bits(back.slew), bits(r.slew));
}

// --- durable store plumbing ---------------------------------------------

TEST(Durability, AtomicSaveLeavesContentAndNoTemp) {
    TempDir dir("atomic");
    const std::string path = (dir.path / "blob.bin").string();
    serve::save_bytes_atomically(path, "payload-1");
    serve::save_bytes_atomically(path, "payload-2");  // atomic overwrite
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "payload-2");
    for (const auto& entry : fs::directory_iterator(dir.path))
        EXPECT_EQ(entry.path().filename().string().find(".tmp."),
                  std::string::npos);
}

TEST(Durability, CleanOrphanTempsHonorsAgeAndSparesRealFiles) {
    TempDir dir("orphans");
    std::ofstream(dir.path / "real.csm.bin") << "keep";
    std::ofstream(dir.path / "dead.csm.bin.tmp.1234") << "partial";
    std::ofstream(dir.path / "dead2.mcsmpack.tmp.77") << "partial";
    // A writer-in-flight temp must survive a min_age_s guard.
    EXPECT_EQ(serve::clean_orphan_temps(dir.str(), 3600), 0u);
    EXPECT_TRUE(fs::exists(dir.path / "dead.csm.bin.tmp.1234"));
    // Aged-out orphans go; real files stay.
    EXPECT_EQ(serve::clean_orphan_temps(dir.str(), 0), 2u);
    EXPECT_FALSE(fs::exists(dir.path / "dead.csm.bin.tmp.1234"));
    EXPECT_FALSE(fs::exists(dir.path / "dead2.mcsmpack.tmp.77"));
    EXPECT_TRUE(fs::exists(dir.path / "real.csm.bin"));
    // Missing directory counts as empty, not an error.
    EXPECT_EQ(serve::clean_orphan_temps((dir.path / "nope").string(), 0), 0u);
}

TEST(Durability, CrashArtifactsAreNeverServed) {
    const Shared& s = Shared::get();
    TempDir dir("crash");
    const std::string key =
        serve::ModelKey::arc("INV_X1", {"A"}).to_string();
    serve::save_model_binary((dir.path / (key + ".csm.bin")).string(),
                             s.inv);
    // A crashed writer's partial payload under a temp name: truncated
    // bytes of the real model.
    const std::string bytes = binary_bytes(s.inv);
    std::ofstream(dir.path / (key + ".csm.bin.tmp.999"), std::ios::binary)
        << bytes.substr(0, bytes.size() / 2);

    // The pack builder skips in-flight/orphaned temps entirely.
    const serve::PackWriter w = serve::pack_from_dirs(dir.str(), "");
    EXPECT_EQ(w.entry_count(), 1u);

    // The repository constructor sweeps aged orphans; the real file loads.
    serve::RepositoryOptions ropt;
    ropt.dir = dir.str();
    serve::ModelRepository repo(&s.lib, ropt);
    EXPECT_EQ(binary_bytes(*repo.get(serve::ModelKey::arc("INV_X1", {"A"}))),
              bytes);
}

TEST(Durability, DurableReplaceFallsBackAcrossFilesystems) {
    TempDir dir("exdev");
    const fs::path shm = "/dev/shm";
    std::error_code ec;
    if (!fs::is_directory(shm, ec) || ec)
        GTEST_SKIP() << "/dev/shm not available";
    struct stat a{}, b{};
    ASSERT_EQ(::stat(shm.c_str(), &a), 0);
    ASSERT_EQ(::stat(dir.path.c_str(), &b), 0);
    if (a.st_dev == b.st_dev)
        GTEST_SKIP() << "/dev/shm shares a filesystem with the temp dir";

    const std::string tmp =
        (shm / ("mcsm_exdev_" + std::to_string(::getpid()))).string();
    std::ofstream(tmp, std::ios::binary) << "cross-device payload";
    const std::string dst = (dir.path / "landed.bin").string();
    serve::durable_replace_file(tmp, dst);  // rename fails EXDEV -> copy
    EXPECT_FALSE(fs::exists(tmp));
    std::ifstream in(dst, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "cross-device payload");
}

// --- mmap zero-parse pack -----------------------------------------------

lut::NdTable quirk_table(const std::string& name) {
    lut::NdTable t({lut::Axis("slew", {20e-12, 80e-12, 200e-12}),
                    lut::Axis("load", {1e-15, 8e-15})},
                   name);
    const double vals[] = {5e-324, -0.0, 1e-300, 3.14, -2e-9, 7.7e-16};
    std::size_t i = 0;
    t.for_each_grid_point([&](std::span<const std::size_t>,
                              std::span<const double>, double& slot) {
        slot = vals[i++ % (sizeof vals / sizeof vals[0])];
    });
    return t;
}

serve::ArcSurfaceData quirk_surface(const std::string& arc_id,
                                    std::uint64_t model_check) {
    serve::ArcSurfaceData s;
    s.arc_id = arc_id;
    s.dt = 2e-12;
    s.settle = 2e-9;
    s.model_check = model_check;
    s.delay = quirk_table("delay");
    s.slew = quirk_table("slew");
    return s;
}

TEST(Pack, RoundTripIsBitExactAndEvaluatesZeroParse) {
    const Shared& s = Shared::get();
    TempDir dir("pack");
    const std::string path = (dir.path / ("p" + std::string(serve::kPackExt)))
                                 .string();
    const std::uint64_t check = serve::model_checksum(s.inv);

    serve::PackWriter writer;
    writer.add_model("INV_X1.SIS.A", s.inv);
    writer.add_surface("arc0", quirk_surface("arc0", check));
    EXPECT_THROW(writer.add_model("INV_X1.SIS.A", s.inv), ModelError);
    writer.write(path);

    const auto pack = serve::MappedPack::map(path);
    EXPECT_EQ(pack->model_count(), 1u);
    EXPECT_EQ(pack->surface_count(), 1u);
    EXPECT_EQ(pack->model_check("INV_X1.SIS.A"), check);
    EXPECT_EQ(pack->model_check("absent"), 0u);
    EXPECT_EQ(binary_bytes(pack->materialize_model("INV_X1.SIS.A")),
              binary_bytes(s.inv));

    const serve::MappedSurface* surf = pack->find_surface("arc0");
    ASSERT_NE(surf, nullptr);
    EXPECT_EQ(surf->arc_id, "arc0");
    EXPECT_EQ(surf->model_check, check);
    const lut::NdTable owned = quirk_table("delay");
    const lut::TableView owned_view = lut::TableView::of(owned);
    ASSERT_EQ(surf->delay.rank(), owned_view.rank());
    for (std::size_t d = 0; d < owned_view.rank(); ++d) {
        EXPECT_EQ(surf->delay.axis(d).name, owned_view.axis(d).name);
        ASSERT_EQ(surf->delay.axis(d).size(), owned_view.axis(d).size());
        for (std::size_t k = 0; k < owned_view.axis(d).size(); ++k)
            EXPECT_EQ(bits(surf->delay.axis(d).knots[k]),
                      bits(owned_view.axis(d).knots[k]));
    }
    ASSERT_EQ(surf->delay.values().size(), owned_view.values().size());
    for (std::size_t k = 0; k < owned_view.values().size(); ++k)
        EXPECT_EQ(bits(surf->delay.values()[k]),
                  bits(owned_view.values()[k]));
    // Owned table and mapped view run the SAME interpolation kernel:
    // off-grid lookups are bitwise identical.
    const double x[] = {47e-12, 3.3e-15};
    EXPECT_EQ(bits(surf->delay.at(x)), bits(owned_view.at(x)));
}

TEST(Pack, RejectsCorruptionTruncationAndBadMagic) {
    const Shared& s = Shared::get();
    TempDir dir("packcorrupt");
    const std::string path = (dir.path / "p.mcsmpack").string();
    serve::PackWriter writer;
    writer.add_model("m", s.inv);
    writer.add_surface("a", quirk_surface("a", serve::model_checksum(s.inv)));
    writer.write(path);

    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string good = ss.str();
    ASSERT_TRUE(serve::MappedPack::map(path) != nullptr);

    const auto write_bytes = [&](const std::string& bytes) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes;
    };
    // One flipped byte in the magic, a payload, or the directory fails
    // the map-time validation. (Header-page padding bytes are outside the
    // checksummed regions, so corruption there is harmless by design.)
    for (const std::size_t pos :
         {std::size_t{3}, good.size() / 2, good.size() - 9}) {
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
        write_bytes(bad);
        EXPECT_THROW(serve::MappedPack::map(path), ModelError) << pos;
    }
    write_bytes(good.substr(0, good.size() - 128));  // truncated
    EXPECT_THROW(serve::MappedPack::map(path), ModelError);
    write_bytes(good.substr(0, 100));  // shorter than the header page
    EXPECT_THROW(serve::MappedPack::map(path), ModelError);
    EXPECT_THROW(serve::MappedPack::map((dir.path / "absent").string()),
                 ModelError);
    write_bytes(good);
    EXPECT_TRUE(serve::MappedPack::map(path) != nullptr);
}

TEST(Pack, HotReloadSwapsGenerationsAndRetiresOldMappings) {
    const Shared& s = Shared::get();
    TempDir dir("packreload");
    const std::string path = (dir.path / "p.mcsmpack").string();
    const std::uint64_t check = serve::model_checksum(s.inv);

    serve::PackWriter w1;
    w1.add_model("m", s.inv);
    w1.add_surface("a", quirk_surface("a", check));
    w1.write(path);

    const auto host = std::make_shared<serve::PackHost>(path);
    EXPECT_EQ(host->generation(), 1u);
    const auto old = host->current();
    EXPECT_FALSE(host->refresh());  // unchanged file: no swap
    EXPECT_EQ(host->generation(), 1u);

    serve::PackWriter w2;
    w2.add_model("m", s.inv);
    w2.add_surface("a", quirk_surface("a", check));
    w2.add_surface("b", quirk_surface("b", check));
    w2.write(path);
    EXPECT_TRUE(host->refresh());
    EXPECT_EQ(host->generation(), 2u);
    const auto fresh = host->current();
    EXPECT_NE(fresh.get(), old.get());
    EXPECT_EQ(fresh->surface_count(), 2u);

    // The retired mapping stays fully usable for its holders.
    EXPECT_EQ(old->surface_count(), 1u);
    ASSERT_NE(old->find_surface("a"), nullptr);
    EXPECT_EQ(old->model_check("m"), check);

    // A botched replacement (corrupt bytes under the pack path) must keep
    // the current mapping serving.
    serve::save_bytes_atomically(path, "garbage, not a pack");
    EXPECT_FALSE(host->refresh());
    EXPECT_EQ(host->generation(), 2u);
    EXPECT_EQ(host->current().get(), fresh.get());
}

TEST(SingleFlight, EraseReadyIfDropsOnlyMatchingReadyEntries) {
    SingleFlightCache<int> cache;
    const auto produce = [](int v) {
        return [v] { return std::make_shared<const int>(v); };
    };
    EXPECT_EQ(*cache.get_or_produce("g1|a", produce(1)), 1);
    EXPECT_EQ(*cache.get_or_produce("g1|b", produce(2)), 2);
    EXPECT_EQ(*cache.get_or_produce("g2|a", produce(3)), 3);
    EXPECT_EQ(cache.erase_ready_if([](const std::string& key) {
        return key.rfind("g1|", 0) == 0;
    }), 2u);
    // Evicted keys reproduce; survivors still hit.
    CacheOutcome outcome = CacheOutcome::kHit;
    EXPECT_EQ(*cache.get_or_produce("g2|a", produce(99), &outcome), 3);
    EXPECT_EQ(outcome, CacheOutcome::kHit);
    EXPECT_EQ(*cache.get_or_produce("g1|a", produce(42), &outcome), 42);
    EXPECT_EQ(outcome, CacheOutcome::kMiss);
}

// --- serving from the pack ----------------------------------------------

TEST(ServePack, ZeroParseSurfacesMatchBuiltOnesBitwise) {
    const Shared& s = Shared::get();
    TempDir models("sp_models");
    TempDir surfaces("sp_surfs");
    const std::string pack_path = (models.path / "p.mcsmpack").string();

    const serve::ModelKey inv_key = serve::ModelKey::arc("INV_X1", {"A"});
    const serve::ModelKey nor_key =
        serve::ModelKey::arc("NOR2", {"A", "B"});
    serve::save_model_binary(
        (models.path / (inv_key.to_string() + ".csm.bin")).string(), s.inv);
    serve::save_model_binary(
        (models.path / (nor_key.to_string() + ".csm.bin")).string(), s.nor);

    std::vector<TimingQuery> batch;
    for (std::size_t i = 0; i < 64; ++i) batch.push_back(mixed_query(i));

    // Service A builds its surfaces from transients and persists them.
    std::vector<TimingResult> built;
    {
        serve::RepositoryOptions ropt;
        ropt.dir = models.str();
        serve::ModelRepository repo(&s.lib, ropt);
        serve::ServeOptions sopt = small_serve_options();
        sopt.surface_dir = surfaces.str();
        serve::TimingService service(repo, sopt);
        built = service.run_batch(batch);
    }
    for (const TimingResult& r : built) ASSERT_TRUE(r.valid) << r.error;

    serve::pack_from_dirs(models.str(), surfaces.str()).write(pack_path);
    const auto host = std::make_shared<serve::PackHost>(pack_path);

    // Service B has NO cell library and NO store directory: any lookup
    // that misses the pack would throw. Every query must be answered
    // zero-parse off the mapping -- bitwise equal to service A.
    serve::RepositoryOptions ropt_b;
    ropt_b.pack = host;
    serve::ModelRepository repo_b(nullptr, ropt_b);
    serve::ServeOptions sopt_b = small_serve_options();
    sopt_b.pack = host;
    serve::TimingService service_b(repo_b, sopt_b);
    const std::vector<TimingResult> mapped = service_b.run_batch(batch);
    ASSERT_EQ(mapped.size(), built.size());
    for (std::size_t i = 0; i < mapped.size(); ++i) {
        ASSERT_TRUE(mapped[i].valid) << mapped[i].error;
        EXPECT_EQ(bits(mapped[i].delay), bits(built[i].delay));
        EXPECT_EQ(bits(mapped[i].slew), bits(built[i].slew));
    }

    // Hot reload: republish the pack, refresh, serve again -- same answers
    // through the new generation.
    serve::pack_from_dirs(models.str(), surfaces.str()).write(pack_path);
    EXPECT_TRUE(host->refresh());
    EXPECT_EQ(host->generation(), 2u);
    const std::vector<TimingResult> reloaded = service_b.run_batch(batch);
    for (std::size_t i = 0; i < reloaded.size(); ++i) {
        ASSERT_TRUE(reloaded[i].valid) << reloaded[i].error;
        EXPECT_EQ(bits(reloaded[i].delay), bits(built[i].delay));
        EXPECT_EQ(bits(reloaded[i].slew), bits(built[i].slew));
    }
}

// --- socket server ------------------------------------------------------

struct ServerFixture {
    const Shared& s = Shared::get();
    serve::ModelRepository repo;
    serve::TimingService service;
    NetServerOptions nopt;
    std::unique_ptr<NetServer> server;
    std::thread loop;

    explicit ServerFixture(const TempDir& dir, NetServerOptions opts = {})
        : repo(&Shared::get().lib, serve::RepositoryOptions{}),
          service(repo, small_serve_options()),
          nopt(std::move(opts)) {
        repo.put(serve::ModelKey::arc("INV_X1", {"A"}), s.inv);
        repo.put(serve::ModelKey::arc("NOR2", {"A", "B"}), s.nor);
        if (nopt.unix_path.empty())
            nopt.unix_path = (dir.path / "srv.sock").string();
        server = std::make_unique<NetServer>(service, nopt);
        loop = std::thread([this] { server->run(); });
    }
    ~ServerFixture() {
        server->stop();
        loop.join();
    }
};

TEST(NetServer, ConcurrentClientsGetBitwiseIdenticalOrderedResults) {
    TempDir dir("sock");
    NetServerOptions opts;
    opts.tcp_port = 0;  // ephemeral loopback listener as well
    opts.batch_max = 64;
    opts.linger_us = 200;
    ServerFixture fx(dir, opts);

    const std::size_t kClients = 4;
    const std::size_t kPerClient = 200;
    std::vector<std::string> request(kClients);
    std::vector<TimingQuery> ref;
    for (std::size_t c = 0; c < kClients; ++c) {
        for (std::size_t i = 0; i < kPerClient; ++i) {
            const std::string line =
                format_query_line(mixed_query(c * kPerClient + i));
            request[c] += line;
            request[c] += '\n';
            TimingQuery q;
            ASSERT_TRUE(parse_query_line(line, q));
            ref.push_back(q);
        }
    }
    const std::vector<TimingResult> want = fx.service.run_batch(ref);

    std::vector<std::vector<std::string>> responses(kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            // Half the clients pipeline over unix, half over TCP.
            LineClient cli =
                c % 2 == 0
                    ? LineClient::connect_unix(fx.nopt.unix_path)
                    : LineClient::connect_tcp(fx.server->tcp_port());
            cli.send_text(request[c]);
            cli.shutdown_write();
            try {
                for (;;) responses[c].push_back(cli.recv_line());
            } catch (const ModelError&) {
                // EOF: server drained and closed.
            }
        });
    }
    for (auto& t : clients) t.join();

    for (std::size_t c = 0; c < kClients; ++c) {
        ASSERT_EQ(responses[c].size(), kPerClient) << "client " << c;
        for (std::size_t i = 0; i < kPerClient; ++i) {
            std::uint64_t id = 0;
            const TimingResult got = parse_result_line(responses[c][i], id);
            EXPECT_EQ(id, i + 1);  // per-connection order, 1-based ids
            const TimingResult& expect = want[c * kPerClient + i];
            ASSERT_TRUE(got.valid) << got.error;
            EXPECT_EQ(bits(got.delay), bits(expect.delay));
            EXPECT_EQ(bits(got.slew), bits(expect.slew));
            EXPECT_EQ(got.path, expect.path);
        }
    }
    const NetServer::Counters counters = fx.server->counters();
    EXPECT_EQ(counters.served, kClients * kPerClient);
    EXPECT_EQ(counters.parse_errors, 0u);
    EXPECT_GE(counters.batches, 1u);
}

TEST(NetServer, ControlLinesAndPerLineErrors) {
    TempDir dir("ctl");
    ServerFixture fx(dir);
    LineClient cli = LineClient::connect_unix(fx.nopt.unix_path);

    EXPECT_EQ(cli.request("ping"), "pong");

    // Malformed query: per-line error carrying the 1-based id; the
    // connection keeps serving.
    const std::string err = cli.request("INV_X1 A sideways 50 0 3");
    EXPECT_EQ(err.rfind("err 1 ", 0), 0u) << err;
    EXPECT_NE(err.find("rise|fall"), std::string::npos) << err;

    // A good query after the error gets the next id.
    cli.send_line(format_query_line(mixed_query(0)));
    cli.send_line("flush");
    std::uint64_t id = 0;
    const TimingResult got = parse_result_line(cli.recv_line(), id);
    EXPECT_EQ(id, 2u);
    EXPECT_TRUE(got.valid) << got.error;

    // Comments and blank lines produce no response and consume no id.
    cli.send_line("# comment");
    cli.send_line("");
    EXPECT_EQ(cli.request("ping"), "pong");

    // reload without a pack is an explicit error, not a crash.
    EXPECT_EQ(cli.request("reload"), "err 0 reload: no pack configured");

    // stats: length-prefixed obs snapshot JSON.
    const std::string header = cli.request("stats");
    ASSERT_EQ(header.rfind("stats ", 0), 0u) << header;
    const std::size_t nbytes = std::stoul(header.substr(6));
    ASSERT_GT(nbytes, 0u);
    const std::string json = cli.recv_bytes(nbytes);
    EXPECT_NE(json.find("net.accepted"), std::string::npos);
}

TEST(NetServer, AdmissionRejectsBeyondMaxPending) {
    TempDir dir("busy");
    NetServerOptions opts;
    opts.max_pending = 1;
    opts.batch_max = 1024;
    opts.linger_us = 1000000;  // only "flush" executes the batch
    ServerFixture fx(dir, opts);
    LineClient cli = LineClient::connect_unix(fx.nopt.unix_path);

    const std::string q = format_query_line(mixed_query(1));
    cli.send_text(q + "\n" + q + "\n" + q + "\nflush\n");
    // Query 1 is admitted; 2 and 3 bounce immediately with busy errors;
    // flush then answers query 1.
    std::uint64_t id = 0;
    const TimingResult r2 = parse_result_line(cli.recv_line(), id);
    EXPECT_EQ(id, 2u);
    EXPECT_FALSE(r2.valid);
    EXPECT_NE(r2.error.find("busy"), std::string::npos);
    const TimingResult r3 = parse_result_line(cli.recv_line(), id);
    EXPECT_EQ(id, 3u);
    EXPECT_FALSE(r3.valid);
    const TimingResult r1 = parse_result_line(cli.recv_line(), id);
    EXPECT_EQ(id, 1u);
    EXPECT_TRUE(r1.valid) << r1.error;
    EXPECT_EQ(fx.server->counters().rejected, 2u);
}

TEST(NetServer, ClientDisconnectDoesNotDisturbOtherClients) {
    TempDir dir("gone");
    ServerFixture fx(dir);
    {
        // Client A submits a query and vanishes without reading the
        // response (destructor closes the socket outright).
        LineClient gone = LineClient::connect_unix(fx.nopt.unix_path);
        gone.send_line(format_query_line(mixed_query(2)));
    }
    // Client B is served normally afterwards; the dropped client's
    // response went to /dev/null, not into B's stream.
    LineClient cli = LineClient::connect_unix(fx.nopt.unix_path);
    EXPECT_EQ(cli.request("ping"), "pong");
    cli.send_line(format_query_line(mixed_query(3)));
    cli.send_line("flush");
    std::uint64_t id = 0;
    const TimingResult got = parse_result_line(cli.recv_line(), id);
    EXPECT_EQ(id, 1u);
    EXPECT_TRUE(got.valid) << got.error;
}

TEST(NetServer, ReloadCommandSwapsThePackGeneration) {
    const Shared& s = Shared::get();
    TempDir dir("netreload");
    const std::string pack_path = (dir.path / "p.mcsmpack").string();
    serve::PackWriter w;
    w.add_model("m", s.inv);
    w.write(pack_path);
    const auto host = std::make_shared<serve::PackHost>(pack_path);

    NetServerOptions opts;
    opts.pack = host;
    ServerFixture fx(dir, opts);
    LineClient cli = LineClient::connect_unix(fx.nopt.unix_path);

    EXPECT_EQ(cli.request("reload"), "reload noop 1");
    serve::PackWriter w2;
    w2.add_model("m", s.inv);
    w2.add_model("m2", s.nor);
    w2.write(pack_path);
    EXPECT_EQ(cli.request("reload"), "reload ok 2");
    EXPECT_EQ(host->generation(), 2u);
}

}  // namespace
}  // namespace mcsm::net
