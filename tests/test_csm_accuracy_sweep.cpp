// Parameterized accuracy sweep: the NOR2 MCSM vs golden across history
// cases, load types, and input ramp times. This is the repository's
// regression net for the paper's headline claim (a few percent of delay
// error everywhere the model is specified).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/characterizer.h"
#include "core/model_scenarios.h"
#include "engine/scenarios.h"
#include "tech/tech130.h"
#include "wave/metrics.h"

namespace mcsm::core {
namespace {

using engine::HistoryCase;

struct Models {
    tech::Technology tech = tech::make_tech130();
    cells::CellLibrary lib{tech};
    CsmModel nor;
    CsmModel inv;

    static const Models& get() {
        static Models m;
        return m;
    }

private:
    Models() {
        const Characterizer chr(lib);
        CharOptions fast;
        fast.transient_caps = false;
        fast.grid_points = 11;
        nor = chr.characterize("NOR2", ModelKind::kMcsm, {"A", "B"}, fast);
        inv = chr.characterize("INV_X1", ModelKind::kSis, {"A"}, fast);
    }
};

// (history case, lumped cap [F] (0 => FO receivers), fanout count,
//  ramp time [s])
using SweepParam = std::tuple<HistoryCase, double, int, double>;

class AccuracySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AccuracySweep, DelayAndShapeWithinTolerance) {
    const auto [hc, cap, fanout, ramp] = GetParam();
    const Models& m = Models::get();
    const double vdd = m.tech.vdd;

    const engine::HistoryStimulus stim =
        engine::nor2_history(hc, vdd, 1.0e-9, 2.0e-9, ramp);
    spice::TranOptions topt;
    topt.tstop = 3.6e-9;
    topt.dt = 1e-12;

    engine::GoldenCell golden(m.lib, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                              engine::LoadSpec{cap, fanout, "INV_X1"});
    const wave::Waveform g = golden.run(topt).node_waveform(golden.out_node());

    ModelLoadSpec load;
    load.cap = cap;
    load.fanout_count = fanout;
    load.receiver = &m.inv;
    ModelCell cell(m.nor, {{"A", stim.a}, {"B", stim.b}}, load);
    const wave::Waveform w = cell.run(topt).node_waveform(cell.out_node());

    const double t_from = stim.t_final - 0.3e-9;
    const auto dg = wave::delay_50(stim.a, false, g, true, vdd, t_from);
    const auto dm = wave::delay_50(stim.a, false, w, true, vdd, t_from);
    ASSERT_TRUE(dg.has_value());
    ASSERT_TRUE(dm.has_value());

    // Paper's headline: ~4% worst case; we allow 6% across this much wider
    // sweep (the receiver-cap approximation costs a little with fanout).
    const double err = std::fabs(*dm - *dg) / *dg;
    EXPECT_LT(err, 0.06) << "golden=" << *dg << " model=" << *dm;

    // Output slew agreement. Fanout loads use the paper's static 1-D
    // receiver caps (eq. (3)), which ignore the receivers' dynamic Miller
    // loading, so the slew tolerance is looser there than for pure caps.
    const auto sg = wave::slew_10_90(g, vdd, true, t_from);
    const auto sm = wave::slew_10_90(w, vdd, true, t_from);
    ASSERT_TRUE(sg.has_value());
    ASSERT_TRUE(sm.has_value());
    EXPECT_LT(std::fabs(*sm - *sg) / *sg, fanout > 0 ? 0.20 : 0.15);

    // Waveform shape: normalized RMSE within 3% of Vdd over the transition.
    const double nrmse = wave::rmse_normalized(
        g, w, t_from, t_from + 1.0e-9, vdd);
    EXPECT_LT(nrmse, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    CapLoads, AccuracySweep,
    ::testing::Combine(::testing::Values(HistoryCase::kFast10,
                                         HistoryCase::kSlow01),
                       ::testing::Values(2e-15, 5e-15, 15e-15),
                       ::testing::Values(0),
                       ::testing::Values(60e-12, 120e-12, 240e-12)));

INSTANTIATE_TEST_SUITE_P(
    FanoutLoads, AccuracySweep,
    ::testing::Combine(::testing::Values(HistoryCase::kFast10,
                                         HistoryCase::kSlow01),
                       ::testing::Values(0.0),
                       ::testing::Values(1, 3, 6),
                       ::testing::Values(80e-12)));

// ---------------------------------------------------------------------------
// MIS skew sweep: model accuracy when the two edges are offset.
// ---------------------------------------------------------------------------

class SkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(SkewSweep, McsmTracksGoldenAcrossSkew) {
    const double skew = GetParam();
    const Models& m = Models::get();
    const double vdd = m.tech.vdd;

    const engine::MisStimulus stim =
        engine::nor2_simultaneous_fall(vdd, 2.0e-9, 80e-12, skew);
    spice::TranOptions topt;
    topt.tstop = 3.4e-9;
    topt.dt = 1e-12;

    engine::GoldenCell golden(m.lib, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                              engine::LoadSpec{5e-15, 0, ""});
    const wave::Waveform g = golden.run(topt).node_waveform(golden.out_node());

    ModelLoadSpec load;
    load.cap = 5e-15;
    ModelCell cell(m.nor, {{"A", stim.a}, {"B", stim.b}}, load);
    const wave::Waveform w = cell.run(topt).node_waveform(cell.out_node());

    const wave::Waveform& ref = skew >= 0.0 ? stim.b : stim.a;
    const auto dg = wave::delay_50(ref, false, g, true, vdd, 1.5e-9);
    const auto dm = wave::delay_50(ref, false, w, true, vdd, 1.5e-9);
    ASSERT_TRUE(dg.has_value());
    ASSERT_TRUE(dm.has_value());
    EXPECT_LT(std::fabs(*dm - *dg) / *dg, 0.06) << "skew=" << skew;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SkewSweep,
                         ::testing::Values(-150e-12, -75e-12, 0.0, 75e-12,
                                           150e-12));

// ---------------------------------------------------------------------------
// Pi-load (arbitrary load) accuracy.
// ---------------------------------------------------------------------------

class PiLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(PiLoadSweep, NearAndFarEndTracked) {
    const double r = GetParam();
    const Models& m = Models::get();
    const double vdd = m.tech.vdd;

    const engine::HistoryStimulus stim =
        engine::nor2_history(HistoryCase::kSlow01, vdd);
    spice::TranOptions topt;
    topt.tstop = 3.6e-9;
    topt.dt = 1e-12;

    engine::LoadSpec gl;
    gl.pi_c1 = 2e-15;
    gl.pi_r = r;
    gl.pi_c2 = 8e-15;
    engine::GoldenCell golden(m.lib, "NOR2", {{"A", stim.a}, {"B", stim.b}},
                              gl);
    const spice::TranResult gr = golden.run(topt);
    const wave::Waveform g_far = gr.node_waveform(golden.far_node());

    ModelLoadSpec ml;
    ml.pi_c1 = 2e-15;
    ml.pi_r = r;
    ml.pi_c2 = 8e-15;
    ModelCell cell(m.nor, {{"A", stim.a}, {"B", stim.b}}, ml);
    const spice::TranResult mr = cell.run(topt);
    const wave::Waveform m_far = mr.node_waveform(cell.far_node());

    const double t_from = stim.t_final - 0.2e-9;
    const auto dg = wave::delay_50(stim.a, false, g_far, true, vdd, t_from);
    const auto dm = wave::delay_50(stim.a, false, m_far, true, vdd, t_from);
    ASSERT_TRUE(dg.has_value());
    ASSERT_TRUE(dm.has_value());
    EXPECT_LT(std::fabs(*dm - *dg) / *dg, 0.05) << "r=" << r;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PiLoadSweep,
                         ::testing::Values(0.3e3, 1e3, 4e3, 12e3));

}  // namespace
}  // namespace mcsm::core
