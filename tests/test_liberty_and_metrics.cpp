// Tests for the Liberty-style NLDM export and the extended waveform metrics
// (integral / peak excursion / width-above used by noise analysis).
#include <gtest/gtest.h>

#include <sstream>

#include "sta/liberty_writer.h"
#include "sta/nldm.h"
#include "tech/tech130.h"
#include "wave/edges.h"
#include "wave/metrics.h"

namespace mcsm {
namespace {

TEST(WaveMetrics, IntegralOfRampIsExact) {
    // Unit ramp 0->1 over [0,1]: integral = 0.5 exactly (piecewise-linear).
    wave::Waveform w({0.0, 1.0}, {0.0, 1.0});
    EXPECT_DOUBLE_EQ(wave::integral(w, 0.0, 1.0), 0.5);
    // Partial window [0.5, 1.0]: trapezoid of 0.5..1.0 = 0.375.
    EXPECT_DOUBLE_EQ(wave::integral(w, 0.5, 1.0), 0.375);
    // Constant extension beyond the samples.
    EXPECT_DOUBLE_EQ(wave::integral(w, 1.0, 2.0), 1.0);
}

TEST(WaveMetrics, IntegralHandlesInteriorBreakpoints) {
    // Triangle pulse: area = base * height / 2.
    const wave::Waveform tri({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
    EXPECT_DOUBLE_EQ(wave::integral(tri, 0.0, 2.0), 1.0);
    EXPECT_THROW(wave::integral(tri, 1.0, 1.0), ModelError);
}

TEST(WaveMetrics, PeakExcursionAboveAndBelow) {
    const wave::Waveform tri({0.0, 1.0, 2.0}, {0.0, 0.8, -0.3});
    EXPECT_NEAR(wave::peak_excursion(tri, 0.5, true, 0.0, 2.0), 0.3, 1e-12);
    EXPECT_NEAR(wave::peak_excursion(tri, 0.0, false, 0.0, 2.0), 0.3, 1e-12);
    // Window excludes the peak sample: endpoint interpolation still counts.
    EXPECT_NEAR(wave::peak_excursion(tri, 0.5, true, 0.0, 0.5), 0.0, 1e-12);
}

TEST(WaveMetrics, WidthAboveGlitchLevel) {
    const wave::Waveform tri({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
    // Crosses 0.5 upward at t=0.5, downward at t=1.5: width 1.0.
    EXPECT_NEAR(wave::width_above(tri, 0.5, 0.0, 2.0), 1.0, 1e-12);
    // Never exceeds 1.5.
    EXPECT_DOUBLE_EQ(wave::width_above(tri, 1.5, 0.0, 2.0), 0.0);
    // Still above the level at the window end: clipped to the window.
    EXPECT_NEAR(wave::width_above(tri, 0.5, 0.0, 1.0), 0.5, 1e-12);
}

class LibertyFixture : public ::testing::Test {
protected:
    LibertyFixture() : tech_(tech::make_tech130()), lib_(tech_) {}
    tech::Technology tech_;
    cells::CellLibrary lib_;
};

TEST_F(LibertyFixture, WritesWellFormedDocument) {
    sta::NldmOptions opt;
    opt.slews = {50e-12, 200e-12};
    opt.loads = {2e-15, 8e-15};
    const sta::NldmLibrary nldm(lib_, {"INV_X1"}, opt);

    std::stringstream ss;
    sta::write_liberty(ss, nldm, {"INV_X1"});
    const std::string text = ss.str();

    // Structural checks.
    EXPECT_NE(text.find("library (mcsm130)"), std::string::npos);
    EXPECT_NE(text.find("lu_table_template (delay_template)"),
              std::string::npos);
    EXPECT_NE(text.find("cell (INV_X1)"), std::string::npos);
    EXPECT_NE(text.find("related_pin : \"A\""), std::string::npos);
    EXPECT_NE(text.find("cell_rise"), std::string::npos);
    EXPECT_NE(text.find("cell_fall"), std::string::npos);
    EXPECT_NE(text.find("negative_unate"), std::string::npos);

    // Balanced braces.
    int depth = 0;
    for (char c : text) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    // Axis values are in the requested units (ns / fF): the 200 ps slew
    // appears as 0.2 and the 8 fF load as 8.
    EXPECT_NE(text.find("0.2"), std::string::npos);
    EXPECT_NE(text.find("8"), std::string::npos);
}

TEST_F(LibertyFixture, RejectsEmptyCellList) {
    sta::NldmOptions opt;
    opt.slews = {50e-12, 200e-12};
    opt.loads = {2e-15, 8e-15};
    const sta::NldmLibrary nldm(lib_, {"INV_X1"}, opt);
    std::stringstream ss;
    EXPECT_THROW(sta::write_liberty(ss, nldm, {}), ModelError);
}

}  // namespace
}  // namespace mcsm
